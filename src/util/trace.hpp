#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mcp::util {

/// Pipeline span points a traced command passes through, in causal order.
/// The frontend marks the client-facing edges; the consensus roles mark
/// the protocol interior. Stage names in the Perfetto export derive from
/// consecutive pairs of these points.
enum class TracePoint : std::uint8_t {
  kClientRecv = 0,   // frontend accepted the client request
  kBatchFlush = 1,   // frontend shipped the batch (MsgProposeBatch)
  kCoord2a = 2,      // coordinator folded the batch into a 2a
  kAcceptorVote = 3, // acceptor persisted + voted 2b covering the command
  kLearned = 4,      // frontend's learner reached a quorum on the command
  kApplied = 5,      // replica applied the command to the state machine
  kReplySent = 6,    // frontend sent MsgClientReply
  kSlowOp = 7,       // end-to-end latency crossed the slow-op threshold
};

const char* trace_point_name(TracePoint p);

/// One timestamped event on the trace ring.
struct TraceEvent {
  std::uint64_t trace_id = 0;  // nonzero for sampled commands
  std::uint64_t ts_us = 0;     // host trace clock (us live, ticks in sim)
  std::int64_t node = 0;       // process id that recorded the event
  std::uint32_t group = 0;     // consensus group the command belongs to
  TracePoint point = TracePoint::kClientRecv;
  std::uint64_t arg = 0;       // point-specific detail (batch size, us, ...)
};

/// Bounded ring of trace events, written lock-free from any thread.
///
/// Writers claim a slot with one fetch_add and publish it with a release
/// store of the slot's ticket; every field is an atomic, so a reader that
/// races an overwrite sees a ticket mismatch and skips the slot instead
/// of reading torn data. Old events are silently overwritten — the ring
/// holds the most recent `capacity()` events, which is the point: a node
/// that has been up for a week still answers "what just happened".
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 4096);

  /// Recording gate, checked (relaxed) before any work: tracing is off by
  /// default so untraced runs pay one predictable branch per span point.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  std::size_t capacity() const { return slots_.size(); }
  /// Total events ever recorded (including overwritten ones).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Record an event; no-op when disabled. Safe from any thread.
  void record(const TraceEvent& e);

  /// Copy the surviving events oldest -> newest. Events being overwritten
  /// concurrently are skipped, not torn.
  std::vector<TraceEvent> snapshot() const;

  /// Render events as chrome://tracing (Perfetto "JSON Array") text:
  /// per-trace complete slices between consecutive span points (so a
  /// sampled command's receive -> reply timeline tiles with no gaps),
  /// plus instant markers for every point and process-name metadata.
  static std::string perfetto_json(const std::vector<TraceEvent>& events);

 private:
  struct Slot {
    std::atomic<std::uint64_t> ticket{0};  // claim index + 1; 0 = empty
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> meta{0};  // node(32) | group(24) | point(8)
    std::atomic<std::uint64_t> arg{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> head_{0};
  std::size_t mask_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace mcp::util
