#pragma once

#include <string>
#include <string_view>

#include "util/metrics.hpp"

namespace mcp::util {

/// Map a dotted metric name onto the Prometheus grammar: every character
/// outside [a-zA-Z0-9_] becomes '_', and the result is prefixed "mcp_"
/// (which also rescues names starting with a digit, e.g. "g0.net...").
std::string prometheus_name(std::string_view name);

/// Render a Metrics snapshot as Prometheus plaintext exposition:
/// counters as counter families, histograms as summaries (quantile
/// lines from the log-bucket percentiles plus _sum/_count/_min/_max).
std::string prometheus_exposition(const Metrics& metrics);

}  // namespace mcp::util
