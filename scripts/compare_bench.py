#!/usr/bin/env python3
"""Perf-regression gate over the archived bench JSON documents.

Compares two outputs of a `bench/harness.hpp` Report (e.g. the previous CI
run's `bench_generic_broadcast --json` artifact vs the current build's) and
fails when a lower-is-better column — bytes, latency, makespan, ticks —
regresses beyond a threshold.

Three column classes, each with its own (threshold, floor) pair:

  * deterministic columns (bytes / lat / makespan / ticks / writes):
    simulated clocks and wire bytes, stable across machines — tight gate.
  * live latency percentiles (p50 / p99): wall-clock measurements from the
    open-loop benches, noisy on shared runners — generous gate that still
    catches order-of-magnitude regressions (e.g. a transport that went
    from event-driven to timeout-driven).
  * deterministic throughput (per_ktick): higher-is-better simulated
    throughput from the group-scaling tables — gated on *drops* instead
    of growth.

`--require-ratio` additionally asserts an invariant WITHIN the new
results (no baseline involved): e.g. the sharded KV bench must keep
groups=4 throughput at >= 2.5x the groups=1 row. Spec format:

    TABLE_SUBSTR|COLUMN|NUM_ROW_LABEL|DEN_ROW_LABEL|MIN_RATIO

where the row labels match any text cell of the row (the bench labels
scaling rows "groups=1", "groups=4", ...). A missing table, row or
column fails the gate: silently skipping would let the bench drop the
very table the ratio protects.

Usage:
    compare_bench.py PREV.json NEW.json [--threshold 0.30] [--min-abs 16]
                     [--lat-threshold 3.0] [--lat-min-abs 500]
                     [--require-ratio SPEC ...]

Exit codes: 0 = no regression (or no baseline to compare against, which is
reported but not fatal so the very first run passes), 1 = regression found,
2 = usage / malformed input.
"""

import argparse
import json
import sys

# Column names (lowercased, substring match) whose values are lower-is-better
# and stable across machines: wire bytes and simulated-clock durations.
REGRESSION_COLUMNS = ("bytes", "lat", "makespan", "ticks", "writes")
# Live latency percentile columns: lower-is-better but wall-clock-noisy.
# Checked second, so a deterministic name like "lat_p99_ticks" stays in the
# tight class.
LATENCY_COLUMNS = ("p50", "p99")
# Deterministic throughput columns (simulated-clock ops rates from the
# group-scaling tables): HIGHER-is-better, gated on drops.
GOODPUT_COLUMNS = ("per_ktick",)


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def index_rows(rows):
    """Identify rows by their text cells (the label columns). Numeric cells
    are excluded on purpose: they are either measured outputs (comparing a
    row only when its measurements are unchanged would defeat the gate) or
    sweep parameters, whose enumeration order is fixed in the bench source —
    so rows sharing the same labels are paired by order of appearance."""
    out = {}
    occurrences = {}
    for row in rows:
        labels = tuple(c for c in row if isinstance(c, str))
        n = occurrences.get(labels, 0)
        occurrences[labels] = n + 1
        out[labels + (f"#{n}",) if n else labels] = row
    return out


def column_class(name):
    """'strict', 'goodput', 'latency', or None for unwatched columns."""
    lowered = name.lower()
    if any(tag in lowered for tag in REGRESSION_COLUMNS):
        return "strict"
    if any(tag in lowered for tag in GOODPUT_COLUMNS):
        return "goodput"
    if any(tag in lowered for tag in LATENCY_COLUMNS):
        return "latency"
    return None


def compare(prev, new, gates):
    """gates: {class_name: (threshold, min_abs)}."""
    regressions = []
    checked = 0
    skipped = []
    prev_tables = {t["name"]: t for t in prev.get("tables", [])}
    for table in new.get("tables", []):
        base = prev_tables.get(table["name"])
        if base is None:
            continue  # new table: nothing to compare against
        columns = table.get("columns", [])
        if base.get("columns", []) != columns:
            # The bench changed shape; positional comparison would pair
            # unrelated cells. Skip and report rather than guess.
            skipped.append(table["name"])
            continue
        watched = {
            i: column_class(name)
            for i, name in enumerate(columns)
            if column_class(name) is not None
        }
        if not watched:
            continue
        base_rows = index_rows(base.get("rows", []))
        for key, row in index_rows(table.get("rows", [])).items():
            base_row = base_rows.get(key)
            if base_row is None:
                continue  # new or relabelled row
            for i in sorted(watched):
                if i >= len(row) or i >= len(base_row):
                    continue
                old_v, new_v = base_row[i], row[i]
                if not isinstance(old_v, (int, float)) or not isinstance(new_v, (int, float)):
                    continue
                if isinstance(old_v, bool) or isinstance(new_v, bool):
                    continue
                checked += 1
                threshold, min_abs = gates[watched[i]]
                # Relative gate with an absolute floor so that noise on tiny
                # values (a 3-tick latency moving to 4) cannot fail the build.
                # Goodput columns regress DOWNWARD; everything else upward.
                if watched[i] == "goodput":
                    regressed = (new_v < old_v * (1 - threshold)
                                 and old_v - new_v > min_abs)
                else:
                    regressed = (new_v > old_v * (1 + threshold)
                                 and new_v - old_v > min_abs)
                if regressed:
                    regressions.append(
                        f"  {table['name']} | {' / '.join(key) or '(row)'} | "
                        f"{columns[i]}: {old_v:g} -> {new_v:g} "
                        f"({100 * (new_v - old_v) / old_v if old_v else float('inf'):+.1f}%)"
                    )
    return checked, regressions, skipped


def check_ratios(doc, specs):
    """Evaluate --require-ratio specs against `doc`; returns failure lines."""
    failures = []
    for spec in specs:
        parts = spec.split("|")
        if len(parts) != 5:
            failures.append(f"  bad --require-ratio spec (need 5 '|' fields): {spec}")
            continue
        table_substr, column, num_label, den_label, min_ratio = parts
        try:
            min_ratio = float(min_ratio)
        except ValueError:
            failures.append(f"  bad --require-ratio minimum in: {spec}")
            continue
        table = next((t for t in doc.get("tables", [])
                      if table_substr in t.get("name", "")), None)
        if table is None:
            failures.append(f"  no table matching '{table_substr}'")
            continue
        columns = table.get("columns", [])
        if column not in columns:
            failures.append(f"  table '{table['name']}' has no column '{column}'")
            continue
        idx = columns.index(column)

        def cell(label):
            for row in table.get("rows", []):
                if any(isinstance(c, str) and c == label for c in row):
                    v = row[idx] if idx < len(row) else None
                    return v if isinstance(v, (int, float)) else None
            return None

        num, den = cell(num_label), cell(den_label)
        if num is None or den is None or den == 0:
            failures.append(
                f"  table '{table['name']}': rows '{num_label}'/'{den_label}' "
                f"missing a numeric '{column}' cell")
            continue
        ratio = num / den
        status = "ok" if ratio >= min_ratio else "FAIL"
        print(f"compare_bench: ratio {num_label}:{den_label} on '{column}' = "
              f"{ratio:.2f} (require >= {min_ratio:g}) {status}")
        if ratio < min_ratio:
            failures.append(
                f"  {table['name']} | {column}: {num_label} ({num:g}) is only "
                f"{ratio:.2f}x {den_label} ({den:g}), need >= {min_ratio:g}x")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prev")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed relative growth for deterministic "
                             "columns before failing (default 0.30)")
    parser.add_argument("--min-abs", type=float, default=16.0,
                        help="ignore deterministic-column absolute growth at "
                             "or below this (default 16)")
    parser.add_argument("--lat-threshold", type=float, default=3.0,
                        help="allowed relative growth for live p50/p99 "
                             "latency columns (default 3.0 — wall-clock "
                             "noise on shared runners is real)")
    parser.add_argument("--lat-min-abs", type=float, default=500.0,
                        help="ignore latency-column absolute growth at or "
                             "below this many microseconds (default 500)")
    parser.add_argument("--goodput-min-abs", type=float, default=1.0,
                        help="ignore throughput-column absolute drops at or "
                             "below this (default 1)")
    parser.add_argument("--require-ratio", action="append", default=[],
                        metavar="TABLE|COLUMN|NUM_ROW|DEN_ROW|MIN",
                        help="assert NUM_ROW's COLUMN >= MIN * DEN_ROW's in "
                             "the NEW results (baseline-free invariant)")
    args = parser.parse_args()

    try:
        new = load(args.new)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: cannot read the new results: {e}")
        return 2

    # Baseline-free invariants first: these must hold even on the very
    # first run, when there is no previous artifact to diff against.
    ratio_failures = check_ratios(new, args.require_ratio)

    try:
        prev = load(args.prev)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: no usable baseline ({e}); skipping the diff gate")
        prev = None

    regressions = []
    if prev is not None:
        gates = {
            "strict": (args.threshold, args.min_abs),
            "goodput": (args.threshold, args.goodput_min_abs),
            "latency": (args.lat_threshold, args.lat_min_abs),
        }
        checked, regressions, skipped = compare(prev, new, gates)
        print(f"compare_bench: checked {checked} byte/latency/goodput cells "
              f"(strict +{100 * args.threshold:.0f}%/floor {args.min_abs:g}, "
              f"latency +{100 * args.lat_threshold:.0f}%/floor {args.lat_min_abs:g})")
        for name in skipped:
            print(f"compare_bench: table '{name}' changed columns; skipped")
    if regressions or ratio_failures:
        print("regressions found:")
        print("\n".join(regressions + ratio_failures))
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
