#!/usr/bin/env python3
"""Scrape mcpaxos_node admin endpoints and sanity-check the exposition.

Single-node mode (original):
    scrape_metrics.py HOST:PORT [--path /metrics] [--require FAMILY ...]
                      [--out FILE] [--timeout SECONDS]

Fetches the Prometheus-style plaintext the node serves on its --admin-port,
parses it into metric families, and exits nonzero when a --require'd family
is missing — the shape CI's smoke job depends on. With --out the raw body
is also written to a file (artifact upload).

Cluster mode:
    scrape_metrics.py --all CLUSTER_FILE [--admin-base PORT]
                      [--require FAMILY ...] [--out-dir DIR]
                      [--max-skew N] [--timeout SECONDS]

Reads every `node <id> <host> <port> <role>` line of the cluster file and
scrapes each node's admin endpoint at <host>:(admin-base + id) — the
convention the CI smoke job starts nodes with. Merges the metric families
across nodes (per-family totals plus per-node breakdown), pulls /healthz
from every node, and cross-checks the per-group consensus progress lines:
if the learned-prefix length of some group diverges across its replicas by
more than --max-skew (default: report only), exits nonzero — a stuck
replica shows up as skew long before it shows up as data loss. Stdlib only.
"""

import argparse
import os
import sys
import urllib.error
import urllib.request


def parse_families(body: str) -> dict:
    """Map family name -> list of (sample_name, labels_text, value)."""
    families = {}
    for line in body.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # "name{labels} value" or "name value"
        head, _, value = line.rpartition(" ")
        if not head:
            continue
        name = head.split("{", 1)[0]
        labels = head[len(name):]
        # A family groups the base series with its _sum/_count/_min/_max.
        family = name
        for suffix in ("_sum", "_count", "_min", "_max"):
            if family.endswith(suffix):
                family = family[: -len(suffix)]
                break
        try:
            parsed = float(value)
        except ValueError:
            continue
        families.setdefault(family, []).append((name, labels, parsed))
    return families


def fetch(url: str, timeout: float) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8", "replace")


def parse_healthz(body: str) -> dict:
    """Map group id -> {'learned': N, 'applied': N, 'lag': N} (when present)."""
    groups = {}
    for line in body.splitlines():
        parts = line.split()
        if len(parts) < 2 or parts[0] != "group":
            continue
        entry = {}
        for token in parts[2:]:
            key, _, value = token.partition("=")
            if key in ("learned", "applied", "lag") and value.isdigit():
                entry[key] = int(value)
        if entry:
            groups[int(parts[1])] = entry
    return groups


def parse_cluster_file(path: str) -> list:
    """[(id, host, port, role)] from `node <id> <host> <port> <role>` lines."""
    nodes = []
    with open(path) as f:
        for line in f:
            parts = line.split("#", 1)[0].split()
            if len(parts) >= 5 and parts[0] == "node":
                nodes.append((int(parts[1]), parts[2], int(parts[3]), parts[4]))
    return nodes


def scrape_one(args) -> int:
    url = "http://" + args.endpoint + args.path
    try:
        body = fetch(url, args.timeout)
    except (urllib.error.URLError, OSError) as e:
        print(f"scrape_metrics: cannot fetch {url}: {e}", file=sys.stderr)
        return 1

    if args.out:
        with open(args.out, "w") as f:
            f.write(body)

    families = parse_families(body)
    print(f"{url}: {len(families)} metric families, "
          f"{sum(len(v) for v in families.values())} samples")
    for fam in sorted(families):
        total = sum(v for (_, _, v) in families[fam])
        print(f"  {fam}  ({len(families[fam])} samples, sum={total:g})")

    missing = [fam for fam in args.require if fam not in families]
    if missing:
        print(f"scrape_metrics: MISSING families: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    return 0


def scrape_all(args) -> int:
    nodes = parse_cluster_file(args.all)
    if not nodes:
        print(f"scrape_metrics: no node lines in {args.all}", file=sys.stderr)
        return 1
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)

    merged = {}          # family -> {node_id: sum}
    progress = {}        # group -> {node_id: learned}
    lag = {}             # group -> {node_id: lag}
    failures = 0
    for node_id, host, _port, role in nodes:
        admin = f"{host}:{args.admin_base + node_id}"
        try:
            metrics_body = fetch(f"http://{admin}/metrics", args.timeout)
            healthz_body = fetch(f"http://{admin}/healthz", args.timeout)
        except (urllib.error.URLError, OSError) as e:
            print(f"scrape_metrics: node {node_id} ({role}) at {admin}: {e}",
                  file=sys.stderr)
            failures += 1
            continue
        if args.out_dir:
            with open(f"{args.out_dir}/metrics-node{node_id}.txt", "w") as f:
                f.write(metrics_body)
            with open(f"{args.out_dir}/healthz-node{node_id}.txt", "w") as f:
                f.write(healthz_body)

        families = parse_families(metrics_body)
        print(f"node {node_id} ({role}) at {admin}: {len(families)} families")
        for fam, samples in families.items():
            merged.setdefault(fam, {})[node_id] = sum(v for (_, _, v) in samples)

        for gid, entry in parse_healthz(healthz_body).items():
            if "learned" in entry:
                progress.setdefault(gid, {})[node_id] = entry["learned"]
            if "lag" in entry:
                lag.setdefault(gid, {})[node_id] = entry["lag"]

    print(f"\nmerged: {len(merged)} metric families across "
          f"{len(nodes) - failures}/{len(nodes)} nodes")
    for fam in sorted(merged):
        per_node = merged[fam]
        total = sum(per_node.values())
        print(f"  {fam}  total={total:g}  "
              + " ".join(f"n{nid}={v:g}" for nid, v in sorted(per_node.items())))

    missing = [fam for fam in args.require if fam not in merged]
    if missing:
        print(f"scrape_metrics: MISSING families: {', '.join(missing)}",
              file=sys.stderr)
        return 1

    # Cross-node skew: every replica of a group should be at (about) the
    # same learned length once traffic settles. Divergence = a stuck or
    # partitioned replica.
    skew_failed = False
    for gid in sorted(progress):
        lengths = progress[gid]
        lo, hi = min(lengths.values()), max(lengths.values())
        lags = lag.get(gid, {})
        print(f"group {gid}: learned "
              + " ".join(f"n{nid}={v}" for nid, v in sorted(lengths.items()))
              + f"  skew={hi - lo}"
              + (f"  lag.max={max(lags.values())}" if lags else ""))
        if args.max_skew is not None and hi - lo > args.max_skew:
            print(f"scrape_metrics: group {gid} learned-length skew {hi - lo} "
                  f"exceeds --max-skew {args.max_skew}", file=sys.stderr)
            skew_failed = True

    return 1 if (failures or skew_failed) else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("endpoint", nargs="?", default=None,
                    help="HOST:PORT of one node's --admin-port")
    ap.add_argument("--all", metavar="CLUSTER_FILE", default=None,
                    help="scrape every node of a cluster file instead")
    ap.add_argument("--admin-base", type=int, default=19600,
                    help="--all: node <id> serves admin on admin-base + id")
    ap.add_argument("--path", default="/metrics")
    ap.add_argument("--require", nargs="*", default=[],
                    help="metric families that must be present")
    ap.add_argument("--out", default=None, help="also write the raw body here")
    ap.add_argument("--out-dir", default=None,
                    help="--all: write each node's raw bodies here")
    ap.add_argument("--max-skew", type=int, default=None,
                    help="--all: fail if a group's learned length diverges "
                         "across nodes by more than this")
    ap.add_argument("--timeout", type=float, default=5.0)
    args = ap.parse_args()

    if args.all:
        return scrape_all(args)
    if not args.endpoint:
        ap.error("either HOST:PORT or --all CLUSTER_FILE is required")
    return scrape_one(args)


if __name__ == "__main__":
    sys.exit(main())
