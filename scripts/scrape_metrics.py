#!/usr/bin/env python3
"""Scrape a mcpaxos_node admin endpoint and sanity-check the exposition.

Usage:
    scrape_metrics.py HOST:PORT [--path /metrics] [--require FAMILY ...]
                      [--out FILE] [--timeout SECONDS]

Fetches the Prometheus-style plaintext the node serves on its --admin-port,
parses it into metric families, and exits nonzero when a --require'd family
is missing — the shape CI's smoke job depends on. With --out the raw body
is also written to a file (artifact upload). Stdlib only.
"""

import argparse
import sys
import urllib.error
import urllib.request


def parse_families(body: str) -> dict:
    """Map family name -> list of (sample_name, labels_text, value)."""
    families = {}
    for line in body.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # "name{labels} value" or "name value"
        head, _, value = line.rpartition(" ")
        if not head:
            continue
        name = head.split("{", 1)[0]
        labels = head[len(name):]
        # A family groups the base series with its _sum/_count/_min/_max.
        family = name
        for suffix in ("_sum", "_count", "_min", "_max"):
            if family.endswith(suffix):
                family = family[: -len(suffix)]
                break
        try:
            parsed = float(value)
        except ValueError:
            continue
        families.setdefault(family, []).append((name, labels, parsed))
    return families


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("endpoint", help="HOST:PORT of the node's --admin-port")
    ap.add_argument("--path", default="/metrics")
    ap.add_argument("--require", nargs="*", default=[],
                    help="metric families that must be present")
    ap.add_argument("--out", default=None, help="also write the raw body here")
    ap.add_argument("--timeout", type=float, default=5.0)
    args = ap.parse_args()

    url = "http://" + args.endpoint + args.path
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as resp:
            body = resp.read().decode("utf-8", "replace")
    except (urllib.error.URLError, OSError) as e:
        print(f"scrape_metrics: cannot fetch {url}: {e}", file=sys.stderr)
        return 1

    if args.out:
        with open(args.out, "w") as f:
            f.write(body)

    families = parse_families(body)
    print(f"{url}: {len(families)} metric families, "
          f"{sum(len(v) for v in families.values())} samples")
    for fam in sorted(families):
        total = sum(v for (_, _, v) in families[fam])
        print(f"  {fam}  ({len(families[fam])} samples, sum={total:g})")

    missing = [fam for fam in args.require if fam not in families]
    if missing:
        print(f"scrape_metrics: MISSING families: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
