// Availability demo (§4.1): what happens when a coordinator crashes
// mid-stream.
//
// Runs the same scenario twice:
//   1. Classic (single-coordinated) rounds: the crash of *the* leader
//      stalls the instance until suspicion + election + a new round's
//      phase 1 complete.
//   2. Multicoordinated rounds: the crash of one of three coordinators is
//      absorbed by the surviving coordinator quorum — no round change, no
//      extra latency.
//
//   $ ./coordinator_failover

#include <cstdio>
#include <memory>
#include <vector>

#include "multicoord/mc_consensus.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace mcp;
namespace mc = mcp::multicoord;

struct Outcome {
  bool learned = false;
  sim::Time learned_at = -1;
  std::int64_t rounds = 0;
};

Outcome run(bool multicoordinated) {
  sim::NetworkConfig net;
  net.min_delay = 5;
  net.max_delay = 10;
  sim::Simulation simulation(/*seed=*/7, net);

  const std::vector<sim::NodeId> coordinators{0, 1, 2};
  mc::Config config;
  config.acceptors = {3, 4, 5, 6, 7};
  config.learners = {8};
  config.proposers = {9};
  config.f = 2;
  config.e = 1;
  std::unique_ptr<paxos::RoundPolicy> policy =
      multicoordinated ? paxos::PatternPolicy::always_multi(coordinators)
                       : paxos::PatternPolicy::always_single(coordinators);
  config.policy = policy.get();
  // Realistic liveness machinery: heartbeats every 50 ticks, suspicion
  // after 175, round retry after 800.
  config.enable_liveness = true;

  for (int i = 0; i < 3; ++i) simulation.make_process<mc::Coordinator>(config);
  for (int i = 0; i < 5; ++i) simulation.make_process<mc::Acceptor>(config);
  auto& learner = simulation.make_process<mc::Learner>(config);
  auto& proposer = simulation.make_process<mc::Proposer>(
      config, cstruct::make_write(1, "k", "v"));
  proposer.start_delay = 300;  // phase 1 is long done by then

  // Crash coordinator 0 — the leader — just before the proposal arrives.
  simulation.crash_at(290, 0);

  simulation.run_until([&] { return learner.learned(); }, 1'000'000);
  Outcome out;
  out.learned = learner.learned();
  out.learned_at = learner.learned_at();
  out.rounds = simulation.metrics().counter("mc.rounds_started");
  return out;
}

}  // namespace

int main() {
  const Outcome single = run(/*multicoordinated=*/false);
  const Outcome multi = run(/*multicoordinated=*/true);

  std::printf("scenario: leader crashes at t=290; command proposed at t=300\n\n");
  std::printf("%-28s %12s %14s %8s\n", "round kind", "learned at", "cmd latency", "rounds");
  std::printf("%-28s %12lld %14lld %8lld\n", "single-coordinated",
              static_cast<long long>(single.learned_at),
              static_cast<long long>(single.learned_at - 300),
              static_cast<long long>(single.rounds));
  std::printf("%-28s %12lld %14lld %8lld\n", "multicoordinated",
              static_cast<long long>(multi.learned_at),
              static_cast<long long>(multi.learned_at - 300),
              static_cast<long long>(multi.rounds));
  std::printf("\nthe single-coordinated run pays suspicion + election + new round;\n"
              "the multicoordinated run is served by the surviving coordinator quorum.\n");
  return (single.learned && multi.learned && multi.learned_at < single.learned_at) ? 0 : 1;
}
