// Command-line client for a live mcpaxos KV cluster: talks the service
// wire protocol (varint-framed wire::Envelopes, no peer handshake) to the
// `server` nodes of a cluster file over TCP, through the synchronous
// service::Client library — sessions, retransmission and leader redirect
// included.
//
// Against examples/cluster_kv.txt (start each node in its own terminal
// first — the servers with their file role, e.g.
// `mcpaxos_node --id 4 --config examples/cluster_kv.txt`):
//
//   $ ./mcpaxos_kv_client --config examples/cluster_kv.txt put greeting hello
//   $ ./mcpaxos_kv_client --config examples/cluster_kv.txt get greeting
//   $ ./mcpaxos_kv_client --config examples/cluster_kv.txt --ops 500
//
// `put K V` / `get K` run one operation; `--ops N` runs a closed loop of N
// random reads/writes and reports throughput and latency percentiles.
// --client-id fixes the session identity (default: random), --timeout-ms
// the per-attempt reply timeout.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cluster_file.hpp"
#include "service/client.hpp"

namespace {

using namespace mcp;

struct Options {
  std::string config_path;
  std::uint64_t client_id = 0;
  long timeout_ms = 250;
  long ops = 0;
  double read_fraction = 0.3;
  std::vector<std::string> command;  // put K V | get K
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--config") {
      opt.config_path = value();
    } else if (arg == "--client-id") {
      opt.client_id = std::stoull(value());
    } else if (arg == "--timeout-ms") {
      opt.timeout_ms = std::stol(value());
    } else if (arg == "--ops") {
      opt.ops = std::stol(value());
    } else if (arg == "--read-fraction") {
      opt.read_fraction = std::stod(value());
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::runtime_error("unknown flag " + arg);
    } else {
      opt.command.push_back(arg);
    }
  }
  return opt;
}

service::Client make_client(const Options& opt) {
  const auto members = runtime::parse_cluster_file(opt.config_path);
  const auto servers = runtime::members_with_role(members, "server");
  runtime::require_dialable_ports(servers);
  std::map<sim::NodeId, service::ServerAddr> addrs;
  std::vector<sim::NodeId> ids;
  for (const auto& m : servers) {
    addrs[m.id] = {m.host, m.port};
    ids.push_back(m.id);
  }
  if (ids.empty()) {
    throw std::runtime_error("no 'server' nodes in " + opt.config_path);
  }
  service::Client::Options copt;
  copt.client_id = opt.client_id;
  copt.servers = ids;
  copt.attempt_timeout = std::chrono::milliseconds(opt.timeout_ms);
  return service::Client(
      std::make_unique<service::TcpClientChannel>(std::move(addrs)), copt);
}

int run_closed_loop(service::Client& client, const Options& opt) {
  using clock = std::chrono::steady_clock;
  std::vector<double> lat_us;
  lat_us.reserve(static_cast<std::size_t>(opt.ops));
  // Deterministic mixed workload over a small key space (so ops conflict
  // and get ordered) seeded by the session id.
  std::uint64_t x = client.client_id() | 1;
  const auto started = clock::now();
  long done = 0;
  for (long i = 0; i < opt.ops; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::string key = "k" + std::to_string(x % 16);
    const bool read = (x >> 8) % 1000 < static_cast<std::uint64_t>(opt.read_fraction * 1000);
    const auto t0 = clock::now();
    const service::Client::Result r =
        read ? client.get(key) : client.put(key, "v" + std::to_string(i));
    if (!r.ok) {
      std::fprintf(stderr, "op %ld failed (no reply within the attempt budget)\n", i);
      break;
    }
    ++done;
    lat_us.push_back(std::chrono::duration<double, std::micro>(clock::now() - t0).count());
  }
  const double wall_s = std::chrono::duration<double>(clock::now() - started).count();
  if (done == 0) return 1;
  std::sort(lat_us.begin(), lat_us.end());
  auto pct = [&](double p) {
    return lat_us[std::min(lat_us.size() - 1,
                           static_cast<std::size_t>(p * static_cast<double>(lat_us.size())))];
  };
  std::printf("%ld ops in %.2f s — %.0f ops/s; latency p50 %.0f us, p99 %.0f us; "
              "%llu retries, %llu redirects\n",
              done, wall_s, static_cast<double>(done) / wall_s, pct(0.50), pct(0.99),
              static_cast<unsigned long long>(client.retries()),
              static_cast<unsigned long long>(client.redirects_followed()));
  return done == opt.ops ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    const bool one_shot =
        (opt.command.size() == 3 && opt.command[0] == "put") ||
        (opt.command.size() == 2 && opt.command[0] == "get");
    if (opt.config_path.empty() || (opt.ops <= 0 && !one_shot)) {
      std::fprintf(stderr,
                   "usage: mcpaxos_kv_client --config FILE [--client-id N] "
                   "[--timeout-ms M] put KEY VALUE\n"
                   "   or: mcpaxos_kv_client --config FILE get KEY\n"
                   "   or: mcpaxos_kv_client --config FILE --ops N "
                   "[--read-fraction F]\n");
      return 2;
    }
    service::Client client = make_client(opt);
    if (opt.ops > 0) return run_closed_loop(client, opt);
    if (opt.command[0] == "put") {
      const auto r = client.put(opt.command[1], opt.command[2]);
      std::printf("%s\n", r.ok ? "OK" : "FAILED (no reply)");
      return r.ok ? 0 : 1;
    }
    const auto r = client.get(opt.command[1]);
    if (!r.ok) {
      std::printf("FAILED (no reply)\n");
      return 1;
    }
    if (!r.found) {
      std::printf("(unset)\n");
      return 0;
    }
    std::printf("%s\n", r.value.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcpaxos_kv_client: %s\n", e.what());
    return 2;
  }
}
