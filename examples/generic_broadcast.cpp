// Generic Broadcast (§3.3): semantic ordering with command histories.
//
// Two learners may deliver commuting commands in different orders — that is
// allowed, and it is exactly what lets Generalized/Multicoordinated Paxos
// avoid collisions on commuting traffic. Conflicting commands, in contrast,
// are delivered in the same relative order everywhere.
//
// The run proposes a mix of commuting (per-user keys) and conflicting
// (shared key) commands from three clients concurrently, then prints each
// learner's linearization and verifies pairwise compatibility.
//
//   $ ./generic_broadcast

#include <cstdio>
#include <vector>

#include "genpaxos/engine.hpp"

int main() {
  using namespace mcp;
  namespace gp = mcp::genpaxos;
  using cstruct::History;

  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 25;  // enough jitter to reorder concurrent messages
  sim::Simulation simulation(/*seed=*/13, net);

  const std::vector<sim::NodeId> coordinators{0, 1, 2};
  static const cstruct::KeyConflict kConflicts;

  gp::Config<History> config;
  config.acceptors = {3, 4, 5, 6, 7};
  config.learners = {8, 9};
  config.proposers = {10, 11, 12};
  config.f = 2;
  config.e = 1;
  config.bottom = History(&kConflicts);
  auto policy = paxos::PatternPolicy::multi_then_single(coordinators);
  config.policy = policy.get();

  for (int i = 0; i < 3; ++i) simulation.make_process<gp::GenCoordinator<History>>(config);
  for (int i = 0; i < 5; ++i) simulation.make_process<gp::GenAcceptor<History>>(config);
  std::vector<gp::GenLearner<History>*> learners;
  for (int i = 0; i < 2; ++i) {
    learners.push_back(&simulation.make_process<gp::GenLearner<History>>(config));
  }
  std::vector<gp::GenProposer<History>*> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(&simulation.make_process<gp::GenProposer<History>>(config));
  }

  // 12 commands, all proposed within a 30-tick burst: ids 1..8 touch
  // private keys (commute), ids 9..12 all write "shared" (conflict).
  constexpr std::size_t kCount = 12;
  for (std::size_t i = 0; i < kCount; ++i) {
    simulation.at(static_cast<sim::Time>(2 * i), [&, i] {
      const std::uint64_t id = i + 1;
      const std::string key = id <= 8 ? "user" + std::to_string(id) : "shared";
      clients[i % 3]->propose(cstruct::make_write(id, key, "v"));
    });
  }

  const bool done = simulation.run_until(
      [&] {
        for (const auto* l : learners) {
          if (l->learned().size() < kCount) return false;
        }
        return true;
      },
      10'000'000);

  std::printf("%zu commands, burst-proposed by 3 clients; collisions detected: %lld\n\n",
              kCount,
              static_cast<long long>(
                  simulation.metrics().counter("gen.collisions_detected")));

  for (const auto* l : learners) {
    std::printf("learner %d delivers:", l->id());
    for (const auto& c : l->learned().sequence()) {
      std::printf(" %s#%llu", c.key == "shared" ? "*" : "",
                  static_cast<unsigned long long>(c.id));
    }
    std::printf("\n");
  }

  const bool compatible = learners[0]->learned().compatible(learners[1]->learned());
  std::printf("\nlinearizations may differ on commuting commands, but they are %s\n",
              compatible ? "COMPATIBLE (same order for every conflicting pair *)"
                         : "INCOMPATIBLE — bug!");

  // Verify the conflicting suffix (*) is identically ordered in both.
  std::vector<std::uint64_t> shared0, shared1;
  for (const auto& c : learners[0]->learned().sequence()) {
    if (c.key == "shared") shared0.push_back(c.id);
  }
  for (const auto& c : learners[1]->learned().sequence()) {
    if (c.key == "shared") shared1.push_back(c.id);
  }
  std::printf("shared-key order, learner %d vs learner %d: %s\n", learners[0]->id(),
              learners[1]->id(), shared0 == shared1 ? "identical" : "DIFFERENT — bug!");
  return (done && compatible && shared0 == shared1) ? 0 : 1;
}
