// Replicated key-value store on Multicoordinated Generalized Paxos.
//
// The paper's motivating application (§1): a fault-tolerant service whose
// replicas apply the same commands in compatible orders. A *single*
// Generalized Consensus instance carries the whole command stream; commands
// on different keys commute and never need ordering, so they are learned
// without collisions even when proposed concurrently.
//
// This is the simulated end of the story — replicas are driven by the
// learner's learned-suffix notification, so a command is applied (and its
// read result produced) the instant it is learned, with no poll interval in
// the path. The *live* end is the service layer: `mcpaxos_node --serve`
// hosts the same Replica class inside a frontend over real TCP, and
// `mcpaxos_kv_client` talks to it (see examples/README.md).
//
//   $ ./replicated_kv

#include <cstdio>
#include <vector>

#include "genpaxos/engine.hpp"
#include "smr/replica.hpp"

int main() {
  using namespace mcp;
  namespace gp = mcp::genpaxos;

  sim::NetworkConfig net;
  net.min_delay = 3;
  net.max_delay = 12;
  net.loss_probability = 0.02;  // a slightly lossy datacenter network
  sim::Simulation simulation(/*seed=*/2026, net);

  const std::vector<sim::NodeId> coordinators{0, 1, 2};
  static const cstruct::KeyConflict kConflicts;  // reads commute, writes per key

  gp::Config<cstruct::History> config;
  config.acceptors = {3, 4, 5, 6, 7};
  config.learners = {8, 9, 10};
  config.proposers = {11, 12};
  config.f = 2;
  config.e = 1;
  config.bottom = cstruct::History(&kConflicts);
  auto policy = paxos::PatternPolicy::multi_then_single(coordinators);
  config.policy = policy.get();

  for (int i = 0; i < 3; ++i) simulation.make_process<gp::GenCoordinator<cstruct::History>>(config);
  for (int i = 0; i < 5; ++i) simulation.make_process<gp::GenAcceptor<cstruct::History>>(config);
  std::vector<gp::GenLearner<cstruct::History>*> learners;
  for (int i = 0; i < 3; ++i) {
    learners.push_back(&simulation.make_process<gp::GenLearner<cstruct::History>>(config));
  }
  std::vector<gp::GenProposer<cstruct::History>*> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(&simulation.make_process<gp::GenProposer<cstruct::History>>(config));
  }
  // One replica per learner, applying the learned history to a KV store the
  // moment it grows (no poll timer — the learner notifies its replica).
  std::vector<smr::Replica*> replicas;
  for (auto* l : learners) {
    replicas.push_back(&simulation.make_process<smr::Replica>(*l));
  }
  // Replica 8's apply stream doubles as the service view: every read's
  // Result is the value observed at the command's place in the learned
  // linearization — exactly what a service frontend would answer its
  // client. Collect and print them instead of discarding.
  struct ReadResult {
    cstruct::Command command;
    smr::KVStore::Result result;
  };
  std::vector<ReadResult> reads;
  replicas[0]->set_apply_listener(
      [&](const cstruct::Command& c, const smr::KVStore::Result& r) {
        if (c.type == cstruct::OpType::kRead) reads.push_back({c, r});
      });

  // Two clients interleave commands: private-key writes (commute), shared
  // "counter" writes (conflict, must be ordered), and reads of the counter
  // (conflict with its writes, so each read is ordered against them and
  // observes a well-defined value).
  constexpr int kOps = 40;
  for (int i = 0; i < kOps; ++i) {
    simulation.at(10 * i, [&, i] {
      const auto id = static_cast<std::uint64_t>(i + 1);
      if (i % 8 == 2) {
        clients[i % 2]->propose(cstruct::make_read(id, "counter"));
        return;
      }
      const bool shared = i % 4 == 0;
      const std::string key = shared ? "counter" : "user" + std::to_string(i);
      clients[i % 2]->propose(cstruct::make_write(id, key, "v" + std::to_string(i)));
    });
  }

  const bool done = simulation.run_until(
      [&] {
        for (const auto* l : learners) {
          if (l->learned().size() < kOps) return false;
        }
        return true;
      },
      5'000'000);

  std::printf("learned %zu/%d commands in %lld ticks (%s)\n",
              learners[0]->learned().size(), kOps,
              static_cast<long long>(simulation.now()), done ? "complete" : "INCOMPLETE");
  std::printf("collisions: %lld, rounds started: %lld\n",
              static_cast<long long>(simulation.metrics().counter("gen.collisions_detected")),
              static_cast<long long>(simulation.metrics().counter("gen.rounds_started")));

  std::printf("reads of \"counter\", in replica 8's apply order:\n");
  for (const ReadResult& r : reads) {
    std::printf("  #%-3llu -> %s\n", static_cast<unsigned long long>(r.command.id),
                r.result.found ? ("\"" + r.result.value + "\"").c_str() : "(unset)");
  }

  // Convergence is the whole claim: every replica applied an equivalent
  // history, so every store is equal. Check it explicitly and loudly.
  std::vector<const smr::Replica*> views(replicas.begin(), replicas.end());
  const bool converged = smr::replicas_converged(views);
  std::printf("replicas converged: %s", converged ? "yes" : "NO");
  for (const auto* r : replicas) {
    std::printf("  [replica %d: %zu applied, %zu keys]", r->id(), r->applied(),
                r->store().data().size());
  }
  std::printf("\nfinal counter key = \"%s\"\n",
              replicas[0]->store().data().count("counter")
                  ? replicas[0]->store().data().at("counter").c_str()
                  : "(unset)");

  // Show that learners may hold different-but-compatible linearizations.
  std::printf("first 6 commands in each learner's linearization:\n");
  for (const auto* l : learners) {
    std::printf("  learner %d:", l->id());
    const auto& seq = l->learned().sequence();
    for (std::size_t i = 0; i < seq.size() && i < 6; ++i) {
      std::printf(" #%llu", static_cast<unsigned long long>(seq[i].id));
    }
    std::printf(" ...\n");
  }
  return done && converged ? 0 : 1;
}
