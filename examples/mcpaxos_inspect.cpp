// Post-mortem auditor for protocol flight-recorder journals.
//
//   mcpaxos_inspect <bundle-or-journal-dir>... [--json] [--f N] [--e N]
//
// Each argument is either an incident bundle (a directory tree holding
// per-node `journal-*.mcj` segments, e.g. what chaos capture or a node's
// --journal-dir leaves behind) or a single node's journal directory. All
// journals found are merged into one cluster timeline and replayed through
// the ballot-array safety invariants (genpaxos::AuditorCore) plus the KV
// exactly-once / conflicting-order checks.
//
// Exit status: 0 when no invariant is violated, 1 otherwise — with --json
// the report is machine-readable and `"violations"` is the CI gate. A
// rejected (corrupt) segment is reported but is not itself a violation:
// the protocol did nothing wrong; the evidence merely has holes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "audit/inspect.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <bundle-or-journal-dir>... [--json] [--f N] [--e N]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool json = false;
  mcp::audit::InspectOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--f" && i + 1 < argc) {
      options.f = std::atoi(argv[++i]);
    } else if (arg == "--e" && i + 1 < argc) {
      options.e = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      usage(argv[0]);
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    usage(argv[0]);
    return 2;
  }

  // Merge journals across all roots; the first manifest found supplies
  // quorum tolerances unless --f/--e override.
  std::vector<std::string> dirs;
  for (const std::string& root : roots) {
    const auto manifest = mcp::audit::read_manifest(root);
    if (options.f < 0) {
      if (auto it = manifest.find("f"); it != manifest.end()) {
        options.f = std::stoi(it->second);
      }
    }
    if (options.e < 0) {
      if (auto it = manifest.find("e"); it != manifest.end()) {
        options.e = std::stoi(it->second);
      }
    }
    for (std::string& d : mcp::audit::find_journal_dirs(root)) {
      dirs.push_back(std::move(d));
    }
  }
  if (dirs.empty()) {
    std::cerr << "no journal-*.mcj segments found under:";
    for (const std::string& root : roots) std::cerr << " " << root;
    std::cerr << "\n";
    return 2;
  }

  const mcp::audit::InspectReport report = mcp::audit::inspect(dirs, options);
  std::cout << (json ? mcp::audit::render_json(report)
                     : mcp::audit::render_text(report));
  return report.ok() ? 0 : 1;
}
