// mcpaxos_sim — command-line scenario runner for the generalized engine.
//
// Lets a user explore the design space without writing code: pick a round
// policy, workload shape, fault injection and network profile; get the
// learning/collision/disk statistics for one deterministic run.
//
//   $ ./mcpaxos_sim --policy multi --commands 50 --conflict 40 --loss 5
//   $ ./mcpaxos_sim --policy fast --crash-coordinator 200 --seed 7
//   $ ./mcpaxos_sim --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "genpaxos/engine.hpp"
#include "smr/kv.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using cstruct::History;

struct Options {
  std::string policy = "ladder";  // single | multi | ladder | fast | clustered | shrinking
  int commands = 40;
  int conflict_percent = 25;
  int proposers = 3;
  int acceptors = 5;
  int coordinators = 3;
  std::uint64_t seed = 1;
  int loss_percent = 0;
  sim::Time crash_coordinator_at = -1;  // -1 = no crash
  sim::Time min_delay = 2;
  sim::Time max_delay = 12;
  sim::Time interarrival = 8;
};

void usage() {
  std::puts(
      "mcpaxos_sim — explore Multicoordinated Generalized Paxos scenarios\n"
      "\n"
      "  --policy P              single | multi | ladder | fast | clustered | shrinking\n"
      "  --commands N            workload size (default 40)\n"
      "  --conflict P            %% of commands on one hot key (default 25)\n"
      "  --proposers N           client count (default 3)\n"
      "  --acceptors N           acceptor count (default 5)\n"
      "  --coordinators N        coordinator count (default 3)\n"
      "  --seed S                RNG seed; runs are deterministic (default 1)\n"
      "  --loss P                %% message loss (default 0)\n"
      "  --crash-coordinator T   crash the leader at simulated time T\n"
      "  --min-delay T / --max-delay T   per-hop latency bounds (2 / 12)\n"
      "  --interarrival T        gap between submitted commands (default 8)");
}

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--policy") {
      opt->policy = next_value();
    } else if (arg == "--commands") {
      opt->commands = std::atoi(next_value());
    } else if (arg == "--conflict") {
      opt->conflict_percent = std::atoi(next_value());
    } else if (arg == "--proposers") {
      opt->proposers = std::atoi(next_value());
    } else if (arg == "--acceptors") {
      opt->acceptors = std::atoi(next_value());
    } else if (arg == "--coordinators") {
      opt->coordinators = std::atoi(next_value());
    } else if (arg == "--seed") {
      opt->seed = static_cast<std::uint64_t>(std::atoll(next_value()));
    } else if (arg == "--loss") {
      opt->loss_percent = std::atoi(next_value());
    } else if (arg == "--crash-coordinator") {
      opt->crash_coordinator_at = std::atoll(next_value());
    } else if (arg == "--min-delay") {
      opt->min_delay = std::atoll(next_value());
    } else if (arg == "--max-delay") {
      opt->max_delay = std::atoll(next_value());
    } else if (arg == "--interarrival") {
      opt->interarrival = std::atoll(next_value());
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<paxos::RoundPolicy> make_policy(const Options& opt,
                                                std::vector<sim::NodeId> coords) {
  if (opt.policy == "single") return paxos::PatternPolicy::always_single(std::move(coords));
  if (opt.policy == "multi") return paxos::PatternPolicy::always_multi(std::move(coords));
  if (opt.policy == "ladder") return paxos::PatternPolicy::multi_then_single(std::move(coords));
  if (opt.policy == "fast") return paxos::PatternPolicy::fast_then_single(std::move(coords));
  if (opt.policy == "clustered") return paxos::PatternPolicy::clustered(std::move(coords), 4);
  if (opt.policy == "shrinking") {
    return std::make_unique<paxos::ShrinkingMultiPolicy>(std::move(coords), 1);
  }
  std::fprintf(stderr, "unknown policy '%s' (try --help)\n", opt.policy.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;

  sim::NetworkConfig net;
  net.min_delay = opt.min_delay;
  net.max_delay = opt.max_delay;
  net.loss_probability = opt.loss_percent / 100.0;
  sim::Simulation simulation(opt.seed, net);

  static const cstruct::KeyConflict kConflicts;
  std::vector<sim::NodeId> coords;
  sim::NodeId next = 0;
  for (int i = 0; i < opt.coordinators; ++i) coords.push_back(next++);
  genpaxos::Config<History> config;
  for (int i = 0; i < opt.acceptors; ++i) config.acceptors.push_back(next++);
  config.learners = {next, static_cast<sim::NodeId>(next + 1)};
  next += 2;
  for (int i = 0; i < opt.proposers; ++i) config.proposers.push_back(next++);
  config.f = (opt.acceptors - 1) / 2;
  config.e = std::max(0, (opt.acceptors - config.f - 1) / 2);
  if (opt.policy == "fast" || opt.policy == "clustered") {
    config.f = std::max(1, (opt.acceptors - 1) / 4);
    config.e = config.f;
  }
  config.bottom = History(&kConflicts);
  auto policy = make_policy(opt, coords);
  config.policy = policy.get();

  std::vector<genpaxos::GenCoordinator<History>*> coordinators;
  for (int i = 0; i < opt.coordinators; ++i) {
    coordinators.push_back(&simulation.make_process<genpaxos::GenCoordinator<History>>(config));
  }
  for (int i = 0; i < opt.acceptors; ++i) {
    simulation.make_process<genpaxos::GenAcceptor<History>>(config);
  }
  std::vector<genpaxos::GenLearner<History>*> learners;
  for (int i = 0; i < 2; ++i) {
    learners.push_back(&simulation.make_process<genpaxos::GenLearner<History>>(config));
  }
  std::vector<genpaxos::GenProposer<History>*> proposers;
  for (int i = 0; i < opt.proposers; ++i) {
    proposers.push_back(&simulation.make_process<genpaxos::GenProposer<History>>(config));
  }

  util::Rng workload_rng(opt.seed * 1033);
  smr::Workload workload({static_cast<std::size_t>(opt.commands),
                          opt.conflict_percent / 100.0, 0.2, 1},
                         workload_rng);
  std::map<std::uint64_t, sim::Time> proposed_at;
  for (std::size_t i = 0; i < workload.commands().size(); ++i) {
    const sim::Time at = static_cast<sim::Time>(opt.interarrival) * static_cast<sim::Time>(i);
    proposed_at[workload.commands()[i].id] = at;
    simulation.at(at, [&, i] {
      proposers[i % proposers.size()]->propose(workload.commands()[i]);
    });
  }
  if (opt.crash_coordinator_at >= 0) {
    simulation.crash_at(opt.crash_coordinator_at, coordinators[0]->id());
  }

  const bool done = simulation.run_until(
      [&] {
        for (const auto* l : learners) {
          if (l->learned().size() < static_cast<std::size_t>(opt.commands)) return false;
        }
        return true;
      },
      50'000'000);

  double total_latency = 0;
  for (const auto& [cid, t] : learners[0]->learn_times()) {
    total_latency += static_cast<double>(t - proposed_at[cid]);
  }
  const auto& m = simulation.metrics();
  std::int64_t disk_writes = 0;
  for (const auto& [name, value] : m.counters_with_prefix("acceptor.")) {
    if (name.size() >= 12 && name.compare(name.size() - 12, 12, ".disk_writes") == 0) {
      disk_writes += value;
    }
  }

  std::printf("policy=%s commands=%d conflict=%d%% loss=%d%% seed=%llu\n",
              opt.policy.c_str(), opt.commands, opt.conflict_percent, opt.loss_percent,
              static_cast<unsigned long long>(opt.seed));
  std::printf("%-26s %s (%zu/%d commands)\n", "run", done ? "complete" : "INCOMPLETE",
              learners[0]->learned().size(), opt.commands);
  std::printf("%-26s %lld ticks\n", "makespan", static_cast<long long>(simulation.now()));
  std::printf("%-26s %.1f ticks\n", "mean command latency",
              total_latency / static_cast<double>(opt.commands));
  std::printf("%-26s %lld classic / %lld fast\n", "collisions",
              static_cast<long long>(m.counter("gen.collisions_detected")),
              static_cast<long long>(m.counter("gen.fast_collisions_detected")));
  std::printf("%-26s %lld\n", "rounds started",
              static_cast<long long>(m.counter("gen.rounds_started")));
  std::printf("%-26s %lld (%.2f per command)\n", "acceptor disk writes",
              static_cast<long long>(disk_writes),
              static_cast<double>(disk_writes) / opt.commands);
  std::printf("%-26s %lld sent / %lld delivered / %lld lost\n", "network messages",
              static_cast<long long>(m.counter("net.sent")),
              static_cast<long long>(m.counter("net.delivered")),
              static_cast<long long>(m.counter("net.lost")));
  return done ? 0 : 1;
}
