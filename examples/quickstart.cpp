// Quickstart: reach consensus on one value with Multicoordinated Paxos.
//
// Builds a cluster of 3 coordinators, 5 acceptors and 2 learners on the
// discrete-event simulator, proposes one command, and shows that it is
// learned in three communication steps — with *no* single coordinator on
// the critical path: any majority of the coordinators suffices.
//
//   $ ./quickstart

#include <cstdio>
#include <vector>

#include "multicoord/mc_consensus.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace mcp;
  namespace mc = mcp::multicoord;

  // Every network hop takes exactly 1 tick, so elapsed time == message steps.
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 1;
  sim::Simulation simulation(/*seed=*/1, net);

  // Ids are assigned densely in creation order; lay out the cluster first.
  const std::vector<sim::NodeId> coordinators{0, 1, 2};
  mc::Config config;
  config.acceptors = {3, 4, 5, 6, 7};
  config.learners = {8, 9};
  config.proposers = {10};
  config.f = 2;  // tolerate any 2 acceptor crashes (majority quorums)
  config.e = 1;

  // Every round is multicoordinated: any 2 of the 3 coordinators form a
  // coordinator quorum (Assumption 3 of the paper).
  auto policy = paxos::PatternPolicy::always_multi(coordinators);
  config.policy = policy.get();
  config.enable_liveness = false;  // clean run: no failures, no timeouts

  for (int i = 0; i < 3; ++i) simulation.make_process<mc::Coordinator>(config);
  for (int i = 0; i < 5; ++i) simulation.make_process<mc::Acceptor>(config);
  std::vector<mc::Learner*> learners;
  for (int i = 0; i < 2; ++i) {
    learners.push_back(&simulation.make_process<mc::Learner>(config));
  }
  auto& proposer = simulation.make_process<mc::Proposer>(
      config, cstruct::make_write(/*id=*/42, "greeting", "hello, paxos"));
  proposer.start_delay = 10;  // let phase 1 run "a priori" first

  simulation.run_to_completion();

  std::printf("proposed at t=10\n");
  for (const mc::Learner* l : learners) {
    if (!l->learned()) {
      std::printf("learner %d learned nothing!\n", l->id());
      return 1;
    }
    std::printf("learner %d learned command #%llu (\"%s\" = \"%s\") at t=%lld "
                "(%lld steps after the proposal)\n",
                l->id(), static_cast<unsigned long long>(l->value()->id),
                l->value()->key.c_str(), l->value()->value.c_str(),
                static_cast<long long>(l->learned_at()),
                static_cast<long long>(l->learned_at() - 10));
  }
  std::printf("rounds started: %lld (no round change was needed)\n",
              static_cast<long long>(simulation.metrics().counter("mc.rounds_started")));
  return 0;
}
