// A live Multicoordinated Paxos node: one protocol process — the same
// classes the simulator runs — hosted by runtime::Node over a TCP
// transport, configured from a cluster file.
//
// Cluster file format (one line per node, '#' comments):
//
//   node <id> <host> <port> <role>
//   # role: coordinator|acceptor|learner|proposer|server
//
// Optional `group` lines shard the cluster into multiple consensus
// groups (all-or-nothing: none = the classic single group):
//
//   group <gid> hash <node-id>...            # keys hashed across groups
//   group <gid> range <lo> <hi> <node-id>... # keys in [lo, hi); hi "+" = ∞
//
// A group's coordinators/acceptors are the listed members holding that
// role; servers front every group (one frontend process, one event loop,
// per-group learner/replica shards) and acceptor nodes host one acceptor
// process per group they belong to. Grouped mode requires
// --cstruct history.
//
// Run one process per node of the cluster, e.g. for examples/cluster6.txt:
//
//   $ ./mcpaxos_node --id 0 --config cluster.txt            # coordinator
//   $ ./mcpaxos_node --id 1 --config cluster.txt            # acceptor ...
//   $ ./mcpaxos_node --id 5 --config cluster.txt --commands 10
//
// A proposer with --commands proposes that many writes sequentially and
// reports acks; learners print their learned history on exit. --run-ms
// bounds the node's lifetime (default 10 000).
//
// A node whose cluster-file role is `server` hosts the KV service
// frontend instead of a bare role: it accepts mcpaxos_kv_client
// connections, batches client commands into consensus (--batch-size /
// --batch-delay), dedups session retries, and applies the learned history
// to its replica. `--serve` merely asserts the role (serving is driven by
// the file, because every node must derive the same membership lists from
// it). See examples/cluster_kv.txt.
//
// Flags: --policy single|multi|fast picks the round structure (single- vs
// multicoordinated vs fast rounds over the file's coordinators); --cstruct
// history|cset|single picks the c-struct set CS (server nodes require
// history); --tick-us maps protocol ticks to real time; --data-dir makes
// the node durable (fsync'd WAL + snapshots) so a restart over the same
// directory recovers instead of starting fresh.
//
// Observability (docs/ARCHITECTURE.md §8, docs/RUNBOOK.md): --admin-port
// serves /metrics (Prometheus plaintext), /healthz, /trace (the live trace
// ring) and /dump (flush the flight recorder) off the node's socket
// reactor; --trace-dir samples commands end to end and writes
// <dir>/trace-node<id>.json (Perfetto-loadable) on exit, --trace-sample
// sets the every-Nth sampling rate, and --slow-op-us logs commands whose
// receive->reply latency crosses the threshold.
//
// Forensics: --journal-dir runs the protocol flight recorder there
// (defaults to <data-dir>/journal when --data-dir is set); a fatal signal
// fsyncs the journal before the process dies — and on SIGTERM/SIGINT also
// drops the trace ring next to it — so `mcpaxos_inspect` can audit what
// the node did right up to the crash.
//
// No terminals to spare? `--demo [thread|tcp]` runs a whole loopback
// cluster (1 coordinator / 3 acceptors / 1 learner / 1 proposer) of real
// concurrent nodes inside this one process and prints the learned history
// and byte counters.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cstruct/cset.hpp"
#include "cstruct/history.hpp"
#include "cstruct/single_value.hpp"
#include "genpaxos/engine.hpp"
#include "runtime/admin.hpp"
#include "runtime/cluster_file.hpp"
#include "runtime/gen_cluster.hpp"
#include "runtime/node.hpp"
#include "service/frontend.hpp"
#include "storage/flight_recorder.hpp"
#include "transport/tcp_transport.hpp"
#include "util/trace.hpp"

namespace {

using namespace mcp;
using runtime::ClusterMember;

struct Options {
  sim::NodeId id = -1;
  std::string config_path;
  std::string policy = "single";
  std::string cstruct = "history";
  int commands = 0;
  long run_ms = 10'000;
  long tick_us = 1000;
  bool serve = false;
  long batch_size = 16;
  long batch_delay = 2;
  /// Non-empty = durable mode: the node persists its stable storage to an
  /// fsync'd WAL + snapshots under this directory (storage::FileStorage)
  /// and, when the directory already holds state, restarts through the
  /// §4.4 recovery path (replay, incarnation bump, on_recover).
  std::string data_dir;
  std::string demo;  // empty = distributed mode
  /// >= 0: serve /metrics and /healthz over an admin HTTP port on the
  /// node's reactor (0 = ephemeral; the bound port is printed).
  long admin_port = -1;
  /// Non-empty: enable the trace recorder and write a Perfetto JSON file
  /// of this node's spans into the directory on exit.
  std::string trace_dir;
  /// Sample every Nth accepted request for end-to-end tracing (server
  /// role). 0 with --trace-dir defaults to 64; 0 without leaves the
  /// frontend unsampled (the recorder still captures spans of traced
  /// batches arriving from other nodes).
  long trace_sample = 0;
  /// Log commands slower than this (receive -> reply) to the slow-op ring;
  /// converted to ticks with --tick-us. 0 = off.
  long slow_op_us = 0;
  /// Protocol flight recorder directory. Empty defaults to
  /// <data-dir>/journal when --data-dir is set; "none" disables even then.
  std::string journal_dir;
};

/// Resolved journal directory ("" = journaling off).
std::string journal_dir_of(const Options& opt) {
  if (opt.journal_dir == "none") return "";
  if (!opt.journal_dir.empty()) return opt.journal_dir;
  if (!opt.data_dir.empty()) return opt.data_dir + "/journal";
  return "";
}

std::unique_ptr<paxos::RoundPolicy> make_policy(const std::string& name,
                                                std::vector<sim::NodeId> coords) {
  if (name == "single") return paxos::PatternPolicy::always_single(std::move(coords));
  if (name == "multi") return paxos::PatternPolicy::multi_then_single(std::move(coords));
  if (name == "fast") return paxos::PatternPolicy::fast_then_single(std::move(coords));
  throw std::runtime_error("unknown --policy " + name + " (single|multi|fast)");
}

cstruct::Command command(std::uint64_t id) {
  const std::string key = (id % 2 == 0) ? "shared" : "user" + std::to_string(id);
  return cstruct::make_write(id, key, "v" + std::to_string(id));
}

void print_metrics(runtime::Node& node) {
  node.call([&] {
    std::printf("-- metrics --\n");
    for (const auto& [name, value] : node.metrics().all_counters()) {
      if (name.rfind("net.", 0) == 0) {
        std::printf("  %-28s %lld\n", name.c_str(), static_cast<long long>(value));
      }
    }
  });
}

void dump_trace_to(const std::string& dir, const Options& opt,
                   runtime::Node& node);

/// Fatal-signal forensics. The recorder pointer is stable for the node's
/// lifetime, so the handler can fsync the journal with one async-signal-safe
/// call; everything else it might want (the trace ring) is NOT safe to
/// touch under SIGSEGV/SIGABRT, so only the orderly kills (SIGTERM/SIGINT)
/// also drop the trace ring — best effort, the process was about to exit
/// anyway. The handler then re-raises with the default disposition so exit
/// codes and core dumps behave normally.
storage::FlightRecorder* g_signal_recorder = nullptr;
runtime::Node* g_signal_node = nullptr;
const Options* g_signal_options = nullptr;

void fatal_signal_handler(int sig) {
  if (g_signal_recorder != nullptr) g_signal_recorder->signal_flush();
  if ((sig == SIGTERM || sig == SIGINT) && g_signal_node != nullptr &&
      g_signal_options != nullptr) {
    // Into the trace dir if one was given, else next to the journal — the
    // incident bundle an operator (or mcpaxos_inspect) collects.
    const Options& opt = *g_signal_options;
    dump_trace_to(!opt.trace_dir.empty() ? opt.trace_dir : journal_dir_of(opt),
                  opt, *g_signal_node);
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void install_fatal_flush(const Options& opt, runtime::Node& node) {
  if (node.flight_recorder() == nullptr) return;
  g_signal_recorder = node.flight_recorder();
  g_signal_node = &node;
  g_signal_options = &opt;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGTERM, SIGINT}) {
    std::signal(sig, fatal_signal_handler);
  }
}

/// Observability knobs shared by both distributed modes: the admin
/// endpoint must attach before the transport starts, the trace recorder
/// before any span could record.
void setup_observability(const Options& opt, runtime::Node& node,
                         transport::TcpTransport& transport) {
  if (opt.admin_port >= 0) {
    const std::uint16_t port = runtime::install_admin(
        node, transport, static_cast<std::uint16_t>(opt.admin_port));
    std::printf("admin endpoint on port %u (/metrics, /healthz, /trace, /dump)\n",
                unsigned{port});
  }
  if (!opt.trace_dir.empty() || opt.trace_sample > 0) {
    node.trace().set_enabled(true);
  }
  if (storage::FlightRecorder* recorder = node.flight_recorder()) {
    std::printf("flight recorder journaling to %s\n", recorder->dir().c_str());
    install_fatal_flush(opt, node);
  }
}

/// Frontend-side tracing knobs derived from the flags.
void apply_trace_options(const Options& opt, service::Frontend::Options* fopt) {
  if (opt.trace_sample > 0) {
    fopt->trace_sample_every = static_cast<std::size_t>(opt.trace_sample);
  } else if (!opt.trace_dir.empty()) {
    fopt->trace_sample_every = 64;
  }
  if (opt.slow_op_us > 0) {
    fopt->slow_op_threshold =
        std::max<long>(1, opt.slow_op_us / std::max(1L, opt.tick_us));
  }
}

void dump_trace_to(const std::string& dir, const Options& opt,
                   runtime::Node& node) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::vector<util::TraceEvent> events = node.trace().snapshot();
  const std::string path =
      dir + "/trace-node" + std::to_string(opt.id) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "mcpaxos_node: cannot write %s\n", path.c_str());
    return;
  }
  const std::string json = util::TraceRecorder::perfetto_json(events);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %zu trace events to %s (load in Perfetto / chrome://tracing)\n",
              events.size(), path.c_str());
}

void dump_trace(const Options& opt, runtime::Node& node) {
  dump_trace_to(opt.trace_dir, opt, node);
}

void dump_slow_ops(runtime::Node& node, service::Frontend* frontend) {
  if (frontend == nullptr) return;
  node.call([&] {
    const auto& slow = frontend->slow_ops();
    if (slow.empty()) return;
    std::printf("-- slow ops (newest %zu) --\n", slow.size());
    for (const auto& op : slow) {
      std::printf("  client=%llu seq=%llu key=%s group=%u total=%lld ticks%s\n",
                  static_cast<unsigned long long>(op.client_id),
                  static_cast<unsigned long long>(op.seq), op.key.c_str(),
                  unsigned{op.gid}, static_cast<long long>(op.total),
                  op.trace_id != 0 ? " (traced)" : "");
    }
  });
}

/// Quorum sizing shared by both modes; mirrors bench/harness.hpp: fast
/// rounds need n > 2e + f, trading crash tolerance (f) for collision
/// tolerance (e).
void size_quorums(const std::string& policy, int acceptors, int* f, int* e) {
  if (policy == "fast") {
    *f = std::max(1, (acceptors - 1) / 4);
    *e = *f;
    if (acceptors <= 2 * *e + *f) *e = 0;
  } else {
    *f = (acceptors - 1) / 2;
    *e = std::max(0, (acceptors - *f - 1) / 2);
  }
}

/// Multi-group mode: the cluster file declared `group` lines. One node
/// hosts one process per group it participates in — per-group coordinator
/// and acceptor processes multiplexed on the node's single event loop, and
/// a server hosts ONE sharded frontend serving every group.
int run_grouped_node(const Options& opt, const runtime::ClusterLayout& layout) {
  namespace gp = genpaxos;
  using History = cstruct::History;

  const std::vector<ClusterMember>& members = layout.members;
  runtime::require_dialable_ports(members);
  const ClusterMember* self = nullptr;
  for (const ClusterMember& m : members) {
    if (m.id == opt.id) self = &m;
  }
  if (self == nullptr) {
    throw std::runtime_error("--id " + std::to_string(opt.id) +
                             " not present in the cluster file");
  }

  static const cstruct::KeyConflict kConflicts;
  struct Group {
    const runtime::ClusterGroup* decl;
    runtime::ClusterRoles roles;
    std::unique_ptr<paxos::RoundPolicy> policy;
    std::unique_ptr<gp::Config<History>> config;
  };
  std::vector<Group> groups;
  for (const runtime::ClusterGroup& g : layout.groups) {
    Group group;
    group.decl = &g;
    group.roles = runtime::roles_of_group(members, g);
    if (group.roles.coordinators.empty()) {
      throw std::runtime_error("group " + std::to_string(g.id) +
                               " has no coordinator member");
    }
    group.policy = make_policy(opt.policy, group.roles.coordinators);
    group.config = std::make_unique<gp::Config<History>>();
    group.config->acceptors = group.roles.acceptors;
    group.config->learners = group.roles.learners;
    group.config->proposers = group.roles.proposers;
    group.config->policy = group.policy.get();
    size_quorums(opt.policy, static_cast<int>(group.roles.acceptors.size()),
                 &group.config->f, &group.config->e);
    group.config->bottom = History(&kConflicts);
    groups.push_back(std::move(group));
  }

  transport::TcpConfig tcp;
  tcp.self = opt.id;
  tcp.listen_host = self->host;
  tcp.listen_port = self->port;
  for (const ClusterMember& m : members) {
    if (m.id != opt.id) tcp.peers[m.id] = {m.host, m.port};
  }
  transport::TcpTransport transport(tcp);
  runtime::NodeOptions node_options;
  node_options.id = opt.id;
  node_options.tick = std::chrono::microseconds(opt.tick_us);
  node_options.data_dir = opt.data_dir;
  node_options.journal_dir = journal_dir_of(opt);
  runtime::Node node(node_options, transport);

  auto in_group = [&](const Group& g) {
    return std::find(g.decl->members.begin(), g.decl->members.end(), opt.id) !=
           g.decl->members.end();
  };
  service::Frontend* frontend = nullptr;
  int hosted = 0;
  if (self->role == "coordinator" || self->role == "acceptor") {
    for (const Group& g : groups) {
      if (!in_group(g)) continue;
      if (self->role == "coordinator") {
        node.make_process_for_group<gp::GenCoordinator<History>>(g.decl->id,
                                                                 *g.config);
      } else {
        node.make_process_for_group<gp::GenAcceptor<History>>(g.decl->id,
                                                              *g.config);
      }
      ++hosted;
    }
    if (hosted == 0) {
      throw std::runtime_error("node " + std::to_string(opt.id) +
                               " is in no group's member list");
    }
  } else if (self->role == "server") {
    std::vector<service::Frontend::GroupConfig> shard_configs;
    for (const Group& g : groups) {
      shard_configs.push_back({g.decl->id, g.config.get()});
    }
    service::Frontend::Options fopt;
    fopt.batch_size = static_cast<std::size_t>(std::max(1L, opt.batch_size));
    fopt.batch_delay = opt.batch_delay;
    apply_trace_options(opt, &fopt);
    frontend = &node.make_process_for_group<service::Frontend>(
        0, shard_configs, service::KeyPartition::from_groups(layout.groups), fopt);
    for (const Group& g : groups) {
      if (g.decl->id != 0) node.route_group(g.decl->id, *frontend);
    }
    hosted = static_cast<int>(groups.size());
  } else {
    throw std::runtime_error("grouped clusters host coordinator, acceptor and "
                             "server roles only (role '" + self->role + "')");
  }

  std::printf("node %d (%s) on %s:%u — policy %s, %zu groups, %d process(es)%s\n",
              opt.id, self->role.c_str(), self->host.c_str(),
              unsigned{self->port}, opt.policy.c_str(), groups.size(), hosted,
              frontend != nullptr ? ", serving KV clients for every group" : "");
  setup_observability(opt, node, transport);
  node.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opt.run_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (frontend != nullptr) {
    node.call([&] {
      std::printf(
          "served %llu requests from %zu sessions — %llu replies, %llu "
          "duplicates dropped, %zu commands applied, %zu keys\n",
          static_cast<unsigned long long>(frontend->requests_received()),
          frontend->session_count(),
          static_cast<unsigned long long>(frontend->replies_sent()),
          static_cast<unsigned long long>(frontend->duplicates_dropped()),
          frontend->applied(), frontend->store_data().size());
      for (const std::uint32_t gid : frontend->group_ids()) {
        const auto* learned = frontend->learned_for_group(gid);
        std::printf("  group %u: %zu commands learned\n", unsigned{gid},
                    learned == nullptr ? std::size_t{0} : learned->size());
      }
    });
  }
  print_metrics(node);
  dump_slow_ops(node, frontend);
  dump_trace(opt, node);
  node.stop();
  return 0;
}

template <cstruct::CStructT CS>
int run_node(const Options& opt, const std::vector<ClusterMember>& members, CS bottom) {
  namespace gp = genpaxos;

  // Every node must derive the same membership lists from the same file
  // (a `server` is a proposer *and* a learner), so the mapping lives in
  // runtime::roles_of, shared with the service tests and the kv client.
  runtime::require_dialable_ports(members);
  const runtime::ClusterRoles roles = runtime::roles_of(members);
  genpaxos::Config<CS> config;
  const std::vector<sim::NodeId>& coords = roles.coordinators;
  config.acceptors = roles.acceptors;
  config.learners = roles.learners;
  config.proposers = roles.proposers;
  const ClusterMember* self = nullptr;
  for (const ClusterMember& m : members) {
    if (m.id == opt.id) self = &m;
  }
  if (self == nullptr) {
    throw std::runtime_error("--id " + std::to_string(opt.id) +
                             " not present in the cluster file");
  }
  auto policy = make_policy(opt.policy, coords);
  config.policy = policy.get();
  size_quorums(opt.policy, static_cast<int>(config.acceptors.size()), &config.f,
               &config.e);
  config.bottom = bottom;

  const bool serve = opt.serve || self->role == "server";
  if (serve && self->role != "server") {
    throw std::runtime_error(
        "--serve requires this node's cluster-file role to be 'server' "
        "(all nodes must agree on the learner/proposer lists)");
  }
  if (serve && !std::is_same_v<CS, cstruct::History>) {
    throw std::runtime_error("--serve requires --cstruct history");
  }

  transport::TcpConfig tcp;
  tcp.self = opt.id;
  tcp.listen_host = self->host;
  tcp.listen_port = self->port;
  for (const ClusterMember& m : members) {
    if (m.id != opt.id) tcp.peers[m.id] = {m.host, m.port};
  }
  transport::TcpTransport transport(tcp);

  runtime::NodeOptions node_options;
  node_options.id = opt.id;
  node_options.tick = std::chrono::microseconds(opt.tick_us);
  node_options.data_dir = opt.data_dir;
  node_options.journal_dir = journal_dir_of(opt);
  runtime::Node node(node_options, transport);

  gp::GenProposer<CS>* proposer = nullptr;
  gp::GenLearner<CS>* learner = nullptr;
  service::Frontend* frontend = nullptr;
  if (self->role == "coordinator") {
    node.make_process<gp::GenCoordinator<CS>>(config);
  } else if (self->role == "acceptor") {
    node.make_process<gp::GenAcceptor<CS>>(config);
  } else if (self->role == "learner") {
    learner = &node.make_process<gp::GenLearner<CS>>(config);
  } else if (self->role == "server") {
    if constexpr (std::is_same_v<CS, cstruct::History>) {
      service::Frontend::Options fopt;
      fopt.batch_size = static_cast<std::size_t>(std::max(1L, opt.batch_size));
      fopt.batch_delay = opt.batch_delay;
      apply_trace_options(opt, &fopt);
      frontend = &node.make_process<service::Frontend>(config, fopt);
    }
  } else {
    proposer = &node.make_process<gp::GenProposer<CS>>(config);
  }

  std::printf("node %d (%s) on %s:%u — policy %s, c-struct %s%s\n", opt.id,
              self->role.c_str(), self->host.c_str(), unsigned{self->port},
              opt.policy.c_str(), opt.cstruct.c_str(),
              frontend != nullptr ? ", serving KV clients" : "");
  setup_observability(opt, node, transport);
  node.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opt.run_ms);
  if (proposer != nullptr && opt.commands > 0) {
    for (int i = 1; i <= opt.commands; ++i) {
      node.call([&] { proposer->propose(command(static_cast<std::uint64_t>(i))); });
      while (node.call([&] { return proposer->delivered_count(); }) <
                 static_cast<std::size_t>(i) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const std::size_t acked = node.call([&] { return proposer->delivered_count(); });
      if (acked < static_cast<std::size_t>(i)) {
        std::printf("  command %d NOT acknowledged before the --run-ms deadline "
                    "(%zu/%d acked)\n",
                    i, acked, opt.commands);
        break;
      }
      std::printf("  command %d acked (%zu/%d)\n", i, acked, opt.commands);
    }
  }
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (learner != nullptr) {
    const std::size_t n = node.call([&] { return learner->learned().size(); });
    std::printf("learned c-struct holds %zu commands\n", n);
  }
  if (frontend != nullptr) {
    node.call([&] {
      std::printf(
          "served %llu requests from %zu sessions — %llu replies, %llu "
          "duplicates dropped, %llu batches, %zu commands applied, %zu keys\n",
          static_cast<unsigned long long>(frontend->requests_received()),
          frontend->session_count(),
          static_cast<unsigned long long>(frontend->replies_sent()),
          static_cast<unsigned long long>(frontend->duplicates_dropped()),
          static_cast<unsigned long long>(frontend->batches_flushed()),
          frontend->applied(), frontend->store().data().size());
    });
  }
  print_metrics(node);
  dump_slow_ops(node, frontend);
  dump_trace(opt, node);
  node.stop();
  return 0;
}

int run_demo(const Options& opt) {
  if (opt.demo != "thread" && opt.demo != "tcp") {
    throw std::runtime_error("unknown --demo backend " + opt.demo +
                             " (thread|tcp)");
  }
  const runtime::Backend backend = opt.demo == "thread"
                                       ? runtime::Backend::kThread
                                       : runtime::Backend::kTcp;
  runtime::GenShape shape;
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = std::chrono::microseconds(opt.tick_us);
  const int count = opt.commands > 0 ? opt.commands : 12;

  std::printf("loopback demo over the %s backend: 1 coordinator, 3 acceptors, "
              "1 learner, 1 proposer, %d commands\n",
              runtime::backend_name(backend), count);
  runtime::GenHistoryCluster cluster(shape, options);
  cluster.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opt.run_ms);
  for (int i = 1; i <= count; ++i) {
    cluster.propose(0, command(static_cast<std::uint64_t>(i)));
    while (cluster.delivered_count(0) < static_cast<std::size_t>(i)) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::printf("deadline hit before command %d was acknowledged\n", i);
        cluster.stop();
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::printf("learner delivers:");
  const cstruct::History learned = cluster.learned(0);
  for (const auto& c : learned.sequence()) {
    std::printf(" %s#%llu", c.key == "shared" ? "*" : "",
                static_cast<unsigned long long>(c.id));
  }
  std::printf("\n(* = conflicting shared-key writes, totally ordered)\n");
  std::printf("bytes on the wire: %lld (net.bytes_sent, summed over nodes)\n",
              static_cast<long long>(cluster.cluster().counter_sum("net.bytes_sent")));
  cluster.stop();
  return 0;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--id") {
      opt.id = std::stoi(value());
    } else if (arg == "--config") {
      opt.config_path = value();
    } else if (arg == "--policy") {
      opt.policy = value();
    } else if (arg == "--cstruct") {
      opt.cstruct = value();
    } else if (arg == "--commands") {
      opt.commands = std::stoi(value());
    } else if (arg == "--run-ms") {
      opt.run_ms = std::stol(value());
    } else if (arg == "--tick-us") {
      opt.tick_us = std::stol(value());
    } else if (arg == "--serve") {
      opt.serve = true;
    } else if (arg == "--batch-size") {
      opt.batch_size = std::stol(value());
    } else if (arg == "--batch-delay") {
      opt.batch_delay = std::stol(value());
    } else if (arg == "--data-dir") {
      opt.data_dir = value();
    } else if (arg == "--admin-port") {
      opt.admin_port = std::stol(value());
    } else if (arg == "--journal-dir") {
      opt.journal_dir = value();
    } else if (arg == "--trace-dir") {
      opt.trace_dir = value();
    } else if (arg == "--trace-sample") {
      opt.trace_sample = std::stol(value());
    } else if (arg == "--slow-op-us") {
      opt.slow_op_us = std::stol(value());
    } else if (arg == "--demo") {
      opt.demo = (i + 1 < argc && argv[i + 1][0] != '-') ? value() : "thread";
    } else {
      throw std::runtime_error("unknown flag " + arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    if (!opt.demo.empty()) return run_demo(opt);
    if (opt.id < 0 || opt.config_path.empty()) {
      std::fprintf(stderr,
                   "usage: mcpaxos_node --id N --config FILE [--policy "
                   "single|multi|fast] [--cstruct history|cset|single] "
                   "[--commands N] [--run-ms M] [--tick-us U]\n"
                   "       [--serve] [--batch-size N] [--batch-delay TICKS] "
                   "[--data-dir DIR]\n"
                   "       [--admin-port P] [--trace-dir DIR] "
                   "[--trace-sample N] [--slow-op-us U] [--journal-dir DIR|none]\n"
                   "   or: mcpaxos_node --demo [thread|tcp] [--commands N]\n");
      return 2;
    }
    const runtime::ClusterLayout layout =
        runtime::parse_cluster_layout_file(opt.config_path);
    if (!layout.groups.empty()) {
      if (opt.cstruct != "history") {
        throw std::runtime_error("grouped cluster files require --cstruct history");
      }
      return run_grouped_node(opt, layout);
    }
    const std::vector<ClusterMember>& members = layout.members;
    if (opt.cstruct == "history") {
      static const cstruct::KeyConflict kConflicts;
      return run_node(opt, members, cstruct::History(&kConflicts));
    }
    if (opt.cstruct == "cset") return run_node(opt, members, cstruct::CSet());
    if (opt.cstruct == "single") return run_node(opt, members, cstruct::SingleValue());
    throw std::runtime_error("unknown --cstruct " + opt.cstruct +
                             " (history|cset|single)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcpaxos_node: %s\n", e.what());
    return 2;
  }
}
