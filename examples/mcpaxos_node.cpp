// A live Multicoordinated Paxos node: one protocol process — the same
// classes the simulator runs — hosted by runtime::Node over a TCP
// transport, configured from a cluster file.
//
// Cluster file format (one line per node, '#' comments):
//
//   node <id> <host> <port> <role>     # role: coordinator|acceptor|learner|proposer
//
// Run one process per node of the cluster, e.g. for examples/cluster6.txt:
//
//   $ ./mcpaxos_node --id 0 --config cluster.txt            # coordinator
//   $ ./mcpaxos_node --id 1 --config cluster.txt            # acceptor ...
//   $ ./mcpaxos_node --id 5 --config cluster.txt --commands 10
//
// A proposer with --commands proposes that many writes sequentially and
// reports acks; learners print their learned history on exit. --run-ms
// bounds the node's lifetime (default 10 000).
//
// Flags: --policy single|multi|fast picks the round structure (single- vs
// multicoordinated vs fast rounds over the file's coordinators); --cstruct
// history|cset|single picks the c-struct set CS; --tick-us maps protocol
// ticks to real time.
//
// No terminals to spare? `--demo [thread|tcp]` runs a whole loopback
// cluster (1 coordinator / 3 acceptors / 1 learner / 1 proposer) of real
// concurrent nodes inside this one process and prints the learned history
// and byte counters.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cstruct/cset.hpp"
#include "cstruct/history.hpp"
#include "cstruct/single_value.hpp"
#include "genpaxos/engine.hpp"
#include "runtime/gen_cluster.hpp"
#include "runtime/node.hpp"
#include "transport/tcp_transport.hpp"

namespace {

using namespace mcp;

struct Member {
  sim::NodeId id = 0;
  std::string host;
  std::uint16_t port = 0;
  std::string role;
};

struct Options {
  sim::NodeId id = -1;
  std::string config_path;
  std::string policy = "single";
  std::string cstruct = "history";
  int commands = 0;
  long run_ms = 10'000;
  long tick_us = 1000;
  std::string demo;  // empty = distributed mode
};

std::vector<Member> parse_cluster(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open cluster file: " + path);
  std::vector<Member> members;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank
    if (kind != "node") throw std::runtime_error("bad cluster line: " + line);
    Member m;
    int port = 0;
    if (!(ls >> m.id >> m.host >> port >> m.role) || port <= 0 || port > 65535) {
      throw std::runtime_error("bad cluster line: " + line);
    }
    m.port = static_cast<std::uint16_t>(port);
    members.push_back(std::move(m));
  }
  if (members.empty()) throw std::runtime_error("empty cluster file: " + path);
  return members;
}

std::unique_ptr<paxos::RoundPolicy> make_policy(const std::string& name,
                                                std::vector<sim::NodeId> coords) {
  if (name == "single") return paxos::PatternPolicy::always_single(std::move(coords));
  if (name == "multi") return paxos::PatternPolicy::multi_then_single(std::move(coords));
  if (name == "fast") return paxos::PatternPolicy::fast_then_single(std::move(coords));
  throw std::runtime_error("unknown --policy " + name + " (single|multi|fast)");
}

cstruct::Command command(std::uint64_t id) {
  const std::string key = (id % 2 == 0) ? "shared" : "user" + std::to_string(id);
  return cstruct::make_write(id, key, "v" + std::to_string(id));
}

void print_metrics(runtime::Node& node) {
  node.call([&] {
    std::printf("-- metrics --\n");
    for (const auto& [name, value] : node.metrics().all_counters()) {
      if (name.rfind("net.", 0) == 0) {
        std::printf("  %-28s %lld\n", name.c_str(), static_cast<long long>(value));
      }
    }
  });
}

template <cstruct::CStructT CS>
int run_node(const Options& opt, const std::vector<Member>& members, CS bottom) {
  namespace gp = genpaxos;

  genpaxos::Config<CS> config;
  std::vector<sim::NodeId> coords;
  const Member* self = nullptr;
  for (const Member& m : members) {
    if (m.role == "coordinator") {
      coords.push_back(m.id);
    } else if (m.role == "acceptor") {
      config.acceptors.push_back(m.id);
    } else if (m.role == "learner") {
      config.learners.push_back(m.id);
    } else if (m.role == "proposer") {
      config.proposers.push_back(m.id);
    } else {
      throw std::runtime_error("unknown role " + m.role);
    }
    if (m.id == opt.id) self = &m;
  }
  if (self == nullptr) {
    throw std::runtime_error("--id " + std::to_string(opt.id) +
                             " not present in the cluster file");
  }
  auto policy = make_policy(opt.policy, coords);
  config.policy = policy.get();
  // Quorum sizing mirrors bench/harness.hpp: fast rounds need n > 2e + f,
  // so they trade crash tolerance (f) for collision tolerance (e); with
  // e = 0 a single slow acceptor would stall every fast round.
  const int n = static_cast<int>(config.acceptors.size());
  if (opt.policy == "fast") {
    config.f = std::max(1, (n - 1) / 4);
    config.e = config.f;
    if (n <= 2 * config.e + config.f) config.e = 0;
  } else {
    config.f = (n - 1) / 2;
    config.e = std::max(0, (n - config.f - 1) / 2);
  }
  config.bottom = bottom;

  transport::TcpConfig tcp;
  tcp.self = opt.id;
  tcp.listen_host = self->host;
  tcp.listen_port = self->port;
  for (const Member& m : members) {
    if (m.id != opt.id) tcp.peers[m.id] = {m.host, m.port};
  }
  transport::TcpTransport transport(tcp);

  runtime::NodeOptions node_options;
  node_options.id = opt.id;
  node_options.tick = std::chrono::microseconds(opt.tick_us);
  runtime::Node node(node_options, transport);

  gp::GenProposer<CS>* proposer = nullptr;
  gp::GenLearner<CS>* learner = nullptr;
  if (self->role == "coordinator") {
    node.make_process<gp::GenCoordinator<CS>>(config);
  } else if (self->role == "acceptor") {
    node.make_process<gp::GenAcceptor<CS>>(config);
  } else if (self->role == "learner") {
    learner = &node.make_process<gp::GenLearner<CS>>(config);
  } else {
    proposer = &node.make_process<gp::GenProposer<CS>>(config);
  }

  std::printf("node %d (%s) on %s:%u — policy %s, c-struct %s\n", opt.id,
              self->role.c_str(), self->host.c_str(), unsigned{self->port},
              opt.policy.c_str(), opt.cstruct.c_str());
  node.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opt.run_ms);
  if (proposer != nullptr && opt.commands > 0) {
    for (int i = 1; i <= opt.commands; ++i) {
      node.call([&] { proposer->propose(command(static_cast<std::uint64_t>(i))); });
      while (node.call([&] { return proposer->delivered_count(); }) <
                 static_cast<std::size_t>(i) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const std::size_t acked = node.call([&] { return proposer->delivered_count(); });
      if (acked < static_cast<std::size_t>(i)) {
        std::printf("  command %d NOT acknowledged before the --run-ms deadline "
                    "(%zu/%d acked)\n",
                    i, acked, opt.commands);
        break;
      }
      std::printf("  command %d acked (%zu/%d)\n", i, acked, opt.commands);
    }
  }
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (learner != nullptr) {
    const std::size_t n = node.call([&] { return learner->learned().size(); });
    std::printf("learned c-struct holds %zu commands\n", n);
  }
  print_metrics(node);
  node.stop();
  return 0;
}

int run_demo(const Options& opt) {
  if (opt.demo != "thread" && opt.demo != "tcp") {
    throw std::runtime_error("unknown --demo backend " + opt.demo +
                             " (thread|tcp)");
  }
  const runtime::Backend backend = opt.demo == "thread"
                                       ? runtime::Backend::kThread
                                       : runtime::Backend::kTcp;
  runtime::GenShape shape;
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = std::chrono::microseconds(opt.tick_us);
  const int count = opt.commands > 0 ? opt.commands : 12;

  std::printf("loopback demo over the %s backend: 1 coordinator, 3 acceptors, "
              "1 learner, 1 proposer, %d commands\n",
              runtime::backend_name(backend), count);
  runtime::GenHistoryCluster cluster(shape, options);
  cluster.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opt.run_ms);
  for (int i = 1; i <= count; ++i) {
    cluster.propose(0, command(static_cast<std::uint64_t>(i)));
    while (cluster.delivered_count(0) < static_cast<std::size_t>(i)) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::printf("deadline hit before command %d was acknowledged\n", i);
        cluster.stop();
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::printf("learner delivers:");
  const cstruct::History learned = cluster.learned(0);
  for (const auto& c : learned.sequence()) {
    std::printf(" %s#%llu", c.key == "shared" ? "*" : "",
                static_cast<unsigned long long>(c.id));
  }
  std::printf("\n(* = conflicting shared-key writes, totally ordered)\n");
  std::printf("bytes on the wire: %lld (net.bytes_sent, summed over nodes)\n",
              static_cast<long long>(cluster.cluster().counter_sum("net.bytes_sent")));
  cluster.stop();
  return 0;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--id") {
      opt.id = std::stoi(value());
    } else if (arg == "--config") {
      opt.config_path = value();
    } else if (arg == "--policy") {
      opt.policy = value();
    } else if (arg == "--cstruct") {
      opt.cstruct = value();
    } else if (arg == "--commands") {
      opt.commands = std::stoi(value());
    } else if (arg == "--run-ms") {
      opt.run_ms = std::stol(value());
    } else if (arg == "--tick-us") {
      opt.tick_us = std::stol(value());
    } else if (arg == "--demo") {
      opt.demo = (i + 1 < argc && argv[i + 1][0] != '-') ? value() : "thread";
    } else {
      throw std::runtime_error("unknown flag " + arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    if (!opt.demo.empty()) return run_demo(opt);
    if (opt.id < 0 || opt.config_path.empty()) {
      std::fprintf(stderr,
                   "usage: mcpaxos_node --id N --config FILE [--policy "
                   "single|multi|fast] [--cstruct history|cset|single] "
                   "[--commands N] [--run-ms M] [--tick-us U]\n"
                   "   or: mcpaxos_node --demo [thread|tcp] [--commands N]\n");
      return 2;
    }
    const std::vector<Member> members = parse_cluster(opt.config_path);
    if (opt.cstruct == "history") {
      static const cstruct::KeyConflict kConflicts;
      return run_node(opt, members, cstruct::History(&kConflicts));
    }
    if (opt.cstruct == "cset") return run_node(opt, members, cstruct::CSet());
    if (opt.cstruct == "single") return run_node(opt, members, cstruct::SingleValue());
    throw std::runtime_error("unknown --cstruct " + opt.cstruct +
                             " (history|cset|single)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcpaxos_node: %s\n", e.what());
    return 2;
  }
}
