// The §4.5 "clustered systems" configuration: ranges of fast rounds with
// single-coordinated recovery rounds interleaved.
//
// On a cluster network with little jitter, messages from different clients
// tend to arrive everywhere in the same order ("spontaneous ordering"), so
// fast rounds learn most commands in two steps even under some contention;
// the occasional collision falls back to the next classic round. This demo
// runs the same contended workload on a low-jitter and a high-jitter
// network and reports how the fast path degrades.
//
//   $ ./clustered_fast

#include <cstdio>
#include <vector>

#include "genpaxos/engine.hpp"

namespace {

using namespace mcp;
namespace gp = mcp::genpaxos;
using cstruct::History;

struct Outcome {
  double mean_latency = 0;
  std::int64_t collisions = 0;
  std::int64_t rounds = 0;
  std::size_t learned = 0;
};

Outcome run(sim::Time max_delay) {
  static const cstruct::KeyConflict kConflicts;
  sim::NetworkConfig net;
  net.min_delay = 5;
  net.max_delay = max_delay;
  sim::Simulation simulation(/*seed=*/21, net);

  const std::vector<sim::NodeId> coordinators{0};
  gp::Config<History> config;
  config.acceptors = {1, 2, 3, 4, 5};
  config.learners = {6};
  config.proposers = {7, 8};
  config.f = 1;  // fast quorums 4 of 5 (n > 2E + F with E = 1)
  config.e = 1;
  config.bottom = History(&kConflicts);
  auto policy = paxos::PatternPolicy::clustered(coordinators, /*fast_range=*/6);
  config.policy = policy.get();

  simulation.make_process<gp::GenCoordinator<History>>(config);
  for (int i = 0; i < 5; ++i) simulation.make_process<gp::GenAcceptor<History>>(config);
  auto& learner = simulation.make_process<gp::GenLearner<History>>(config);
  std::vector<gp::GenProposer<History>*> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(&simulation.make_process<gp::GenProposer<History>>(config));
  }

  // Two clients write the same hot key in simultaneous bursts: every pair
  // conflicts, so ordering is carried entirely by message arrival order.
  constexpr std::size_t kOps = 30;
  std::map<std::uint64_t, sim::Time> proposed_at;
  for (std::size_t i = 0; i < kOps; ++i) {
    const sim::Time at = static_cast<sim::Time>(80 * (i / 2));  // pairs fire together
    proposed_at[i + 1] = at;
    simulation.at(at, [&, i] {
      clients[i % 2]->propose(cstruct::make_write(i + 1, "hot", "v" + std::to_string(i)));
    });
  }

  simulation.run_until([&] { return learner.learned().size() >= kOps; }, 10'000'000);

  Outcome out;
  out.learned = learner.learned().size();
  out.collisions =
      simulation.metrics().counter("gen.fast_collisions_detected") +
      simulation.metrics().counter("gen.collisions_detected");
  out.rounds = simulation.metrics().counter("gen.rounds_started");
  double total = 0;
  for (const auto& [id, t] : learner.learn_times()) {
    total += static_cast<double>(t - proposed_at[id]);
  }
  out.mean_latency = total / static_cast<double>(kOps);
  return out;
}

}  // namespace

int main() {
  std::printf("clustered configuration (§4.5): 6 fast rounds per classic recovery round\n");
  std::printf("30 conflicting commands from 2 clients; base hop latency 5\n\n");
  std::printf("%-26s %10s %12s %8s %8s\n", "network", "mean lat", "collisions",
              "rounds", "learned");
  const Outcome calm = run(/*max_delay=*/5);    // deterministic ordering (LAN)
  const Outcome noisy = run(/*max_delay=*/30);  // WAN-ish jitter
  std::printf("%-26s %10.1f %12lld %8lld %8zu\n", "no jitter (delay = 5)", calm.mean_latency,
              static_cast<long long>(calm.collisions), static_cast<long long>(calm.rounds),
              calm.learned);
  std::printf("%-26s %10.1f %12lld %8lld %8zu\n", "high jitter (U[5,30])",
              noisy.mean_latency, static_cast<long long>(noisy.collisions),
              static_cast<long long>(noisy.rounds), noisy.learned);
  std::printf("\nwith spontaneous ordering the fast path absorbs conflicting traffic;\n");
  std::printf("jitter breaks the ordering and the ladder leans on recovery rounds.\n");
  return (calm.learned == 30 && noisy.learned == 30) ? 0 : 1;
}
