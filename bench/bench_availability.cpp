// E3 — Availability under coordinator failure (DESIGN.md).
//
// Paper (§1, §4.1): if the single leader of a classic round fails, its
// failure must be suspected, a new leader elected, and phase 1 of a higher
// round executed before commands flow again. In multicoordinated rounds a
// single coordinator failure "does not prevent commands from being learned"
// and requires no round change.
//
// Scenario: leader (coordinator 0) crashes at t=290, command proposed at
// t=300, FD heartbeat 50 / timeout 175. We report the command's latency and
// the number of rounds, per round kind, across seeds.

#include <cstdio>

#include "harness.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using bench::McPolicy;
using bench::Shape;

struct Outcome {
  double mean_latency;
  double p99_latency;
  double mean_rounds;
  int failures;
};

Outcome run(McPolicy kind, bool crash_leader) {
  util::Histogram lat;
  double rounds = 0;
  int failures = 0;
  constexpr int kSeeds = 100;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Shape shape;
    shape.seed = seed;
    shape.net.min_delay = 5;
    shape.net.max_delay = 10;
    auto c = bench::make_mc(shape, kind);
    c.proposers[0]->start_delay = 300;
    if (crash_leader) c.sim->crash_at(290, c.coordinators[0]->id());
    const bool ok =
        c.sim->run_until([&] { return c.learners[0]->learned(); }, 1'000'000);
    if (!ok) {
      ++failures;
      continue;
    }
    lat.add(static_cast<double>(c.learners[0]->learned_at() - 300));
    rounds += static_cast<double>(c.sim->metrics().counter("mc.rounds_started"));
  }
  return Outcome{lat.mean(), lat.percentile(0.99), rounds / (kSeeds - failures), failures};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv,
      "E3: command latency when a coordinator crashes just before the proposal",
      "single-coordinated rounds stall for detection+election+phase 1; "
      "multicoordinated rounds are unaffected");

  auto& t = report.table(
      "latency under coordinator crash",
      {"configuration", "mean lat", "p99 lat", "rounds", "fail"});
  auto add = [&](const char* name, const Outcome& o) {
    t.row({name, o.mean_latency, o.p99_latency, o.mean_rounds, o.failures});
  };
  add("single-coord, no crash", run(McPolicy::kSingle, false));
  add("single-coord, leader crash", run(McPolicy::kSingle, true));
  add("multicoord (3 coords), no crash", run(McPolicy::kMulti, false));
  add("multicoord (3 coords), crash 1", run(McPolicy::kMulti, true));

  report.note(
      "the crash victim is coordinator 0 — the leader in both configurations. "
      "multicoordinated rounds keep the same round number (rounds = 1) because any "
      "majority of coordinators can still forward.");
  report.finish();
  return 0;
}
