// E5 — Collision rate and cost vs conflict rate (DESIGN.md).
//
// Paper (§4.2): fast rounds collide when concurrently proposed conflicting
// commands reach acceptors in different orders — and every collided value
// was *accepted*, i.e. written to an acceptor disk before being discarded.
// Multicoordinated rounds collide at the coordinators, *before* any
// acceptor accepts, so a collision wastes no disk write.
//
// Workload: bursts of commands from 3 proposers over a jittery network on
// the generalized engine (command histories, KV conflict relation), sweeping
// the fraction of commands that target one hot key. The wire codec also
// gives bytes-on-the-wire per learned command: colliding fast rounds re-ship
// whole c-structs, so bytes climb with the conflict fraction.

#include <cstdio>

#include "harness.hpp"
#include "smr/kv.hpp"

namespace {

using namespace mcp;
using bench::McPolicy;
using bench::Shape;

struct Row {
  double collisions = 0;       // per run
  double disk_writes = 0;      // acceptor disk writes per learned command
  double time_to_learn = 0;    // ticks until every learner has everything
  double bytes_per_cmd = 0;    // wire bytes per learned command
  int incomplete = 0;
};

constexpr std::size_t kCommands = 30;

bench::GenCluster make(McPolicy kind, std::uint64_t seed, bool deltas = true) {
  Shape shape;
  shape.seed = seed;
  shape.proposers = 3;
  shape.net.min_delay = 1;
  shape.net.max_delay = 25;
  shape.delta_messages = deltas;
  return bench::make_gen(shape, kind);
}

Row sweep_point(McPolicy kind, double conflict, int seeds) {
  Row row;
  int done = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds); ++seed) {
    auto c = make(kind, seed);
    util::Rng wl_rng(seed * 991);
    smr::Workload workload({kCommands, conflict, 0.0, 1}, wl_rng);
    for (std::size_t i = 0; i < workload.commands().size(); ++i) {
      c.sim->at(static_cast<sim::Time>(4 * i), [&, i] {
        c.proposers[i % c.proposers.size()]->propose(workload.commands()[i]);
      });
    }
    const bool ok =
        c.sim->run_until([&] { return c.all_learned(kCommands); }, 20'000'000);
    if (!ok) {
      ++row.incomplete;
      continue;
    }
    ++done;
    row.collisions +=
        static_cast<double>(c.sim->metrics().counter("gen.collisions_detected") +
                            c.sim->metrics().counter("gen.fast_collisions_detected"));
    row.disk_writes +=
        static_cast<double>(bench::acceptor_disk_writes(c.sim->metrics())) / kCommands;
    row.time_to_learn += static_cast<double>(c.sim->now());
    row.bytes_per_cmd +=
        static_cast<double>(bench::net_bytes(c.sim->metrics())) / kCommands;
  }
  if (done > 0) {
    row.collisions /= done;
    row.disk_writes /= done;
    row.time_to_learn /= done;
    row.bytes_per_cmd /= done;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E5: collisions vs conflict fraction (30 cmds, 3 proposers, burst)",
      "collisions grow with conflicts; fast collisions waste acceptor disk writes, "
      "multicoordinated ones do not");

  constexpr int kSeeds = 12;
  auto& mc_table = report.table(
      "multicoordinated rounds",
      {"conflict %", "collisions", "writes/cmd", "ticks", "bytes/cmd"});
  auto& fast_table = report.table(
      "fast rounds (GenPaxos)",
      {"conflict %", "collisions", "writes/cmd", "ticks", "bytes/cmd"});
  for (double conflict : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Row mc = sweep_point(McPolicy::kMultiThenSingle, conflict, kSeeds);
    const Row fr = sweep_point(McPolicy::kFast, conflict, kSeeds);
    mc_table.row({100 * conflict, mc.collisions, mc.disk_writes, mc.time_to_learn,
                  mc.bytes_per_cmd});
    fast_table.row({100 * conflict, fr.collisions, fr.disk_writes, fr.time_to_learn,
                    fr.bytes_per_cmd});
  }

  // Delta-encoded 2a/2b before/after under the collision-heavy workload:
  // colliding rounds restart the delta chains (every new round opens with a
  // full 2a), so this is the adversarial case for the encoding.
  auto& dt = report.table("delta-encoded 2a/2b ablation, 100% conflict",
                          {"policy", "2a/2b encoding", "bytes/cmd", "gen.2a bytes"});
  for (const auto& [kind, label] : {std::pair{McPolicy::kMultiThenSingle, "multicoord"},
                                    std::pair{McPolicy::kFast, "fast"}}) {
    for (const bool deltas : {false, true}) {
      double bytes_per_cmd = 0;
      double bytes_2a = 0;
      int done = 0;
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto c = make(kind, seed, deltas);
        util::Rng wl_rng(seed * 991);
        smr::Workload workload({kCommands, 1.0, 0.0, 1}, wl_rng);
        for (std::size_t i = 0; i < workload.commands().size(); ++i) {
          c.sim->at(static_cast<sim::Time>(4 * i), [&, i] {
            c.proposers[i % c.proposers.size()]->propose(workload.commands()[i]);
          });
        }
        if (!c.sim->run_until([&] { return c.all_learned(kCommands); }, 20'000'000)) {
          continue;
        }
        ++done;
        bytes_per_cmd +=
            static_cast<double>(bench::net_bytes(c.sim->metrics())) / kCommands;
        bytes_2a += static_cast<double>(c.sim->metrics().counter("net.bytes.gen.2a"));
      }
      if (done > 0) {
        bytes_per_cmd /= done;
        bytes_2a /= done;
      }
      dt.row({label, deltas ? "deltas" : "full c-structs", bytes_per_cmd, bytes_2a});
    }
  }

  // Per-message-type byte breakdown of one conflict-heavy run per policy.
  for (const auto& [kind, name] :
       {std::pair{McPolicy::kMultiThenSingle, "byte breakdown, multicoord, 100% conflict"},
        std::pair{McPolicy::kFast, "byte breakdown, fast, 100% conflict"}}) {
    auto c = make(kind, 1);
    util::Rng wl_rng(991);
    smr::Workload workload({kCommands, 1.0, 0.0, 1}, wl_rng);
    for (std::size_t i = 0; i < workload.commands().size(); ++i) {
      c.sim->at(static_cast<sim::Time>(4 * i), [&, i] {
        c.proposers[i % c.proposers.size()]->propose(workload.commands()[i]);
      });
    }
    c.sim->run_until([&] { return c.all_learned(kCommands); }, 20'000'000);
    report.bytes_table(name, c.sim->metrics());
  }

  report.note(
      "collisions = detected per run; writes/cmd = acceptor disk writes per learned "
      "command, including writes wasted on discarded fast values; bytes/cmd = "
      "serialized wire bytes (net.bytes_sent) per learned command");
  report.finish();
  return 0;
}
