// E9 — Microbenchmarks for the c-struct operations of §3.3.1 (DESIGN.md).
//
// Generalized Paxos spends its CPU in ⊓ / ⊔ / compatibility checks on
// command histories; this google-benchmark binary measures their cost as a
// function of history length and conflict relation, including the
// literal-prefix fast path that dominates steady-state protocol traffic.

#include <benchmark/benchmark.h>

#include "cstruct/cset.hpp"
#include "cstruct/history.hpp"
#include "util/rng.hpp"

namespace {

using namespace mcp::cstruct;

const KeyConflict kKey;
const AlwaysConflict kAlways;
const NeverConflict kNever;

History random_history(const ConflictRelation* rel, std::size_t len, std::uint64_t seed,
                       int keyspace) {
  mcp::util::Rng rng(seed);
  History h(rel);
  for (std::size_t i = 0; i < len; ++i) {
    h.append(make_write(i + 1, "k" + std::to_string(rng.uniform(0, keyspace - 1)), "v"));
  }
  return h;
}

void BM_HistoryAppend(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    History h(&kKey);
    for (std::size_t i = 0; i < len; ++i) h.append(make_write(i + 1, "k", "v"));
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HistoryAppend)->Arg(16)->Arg(64)->Arg(256);

void BM_MeetLiteralPrefix(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  History longer = random_history(&kKey, len, 1, 8);
  History shorter = History::from_sequence(
      &kKey, {longer.sequence().begin(), longer.sequence().begin() + static_cast<long>(len / 2)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(longer.meet(shorter));
  }
}
BENCHMARK(BM_MeetLiteralPrefix)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_MeetDivergent(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  // Common prefix + diverging commuting tails: the expensive general case.
  History a = random_history(&kKey, len, 1, 8);
  History b = a;
  for (std::size_t i = 0; i < len / 4; ++i) {
    a.append(make_write(10000 + i, "ka" + std::to_string(i), "v"));
    b.append(make_write(20000 + i, "kb" + std::to_string(i), "v"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.meet(b));
  }
}
BENCHMARK(BM_MeetDivergent)->Arg(16)->Arg(64)->Arg(256);

void BM_JoinDivergent(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  History a = random_history(&kKey, len, 1, 8);
  History b = a;
  for (std::size_t i = 0; i < len / 4; ++i) {
    a.append(make_write(10000 + i, "ka" + std::to_string(i), "v"));
    b.append(make_write(20000 + i, "kb" + std::to_string(i), "v"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.join(b));
  }
}
BENCHMARK(BM_JoinDivergent)->Arg(16)->Arg(64)->Arg(256);

void BM_CompatibleDivergent(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  History a = random_history(&kKey, len, 1, 8);
  History b = a;
  for (std::size_t i = 0; i < len / 4; ++i) {
    a.append(make_write(10000 + i, "ka" + std::to_string(i), "v"));
    b.append(make_write(20000 + i, "kb" + std::to_string(i), "v"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compatible(b));
  }
}
BENCHMARK(BM_CompatibleDivergent)->Arg(16)->Arg(64)->Arg(256);

void BM_ExtendsFastPath(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  History longer = random_history(&kKey, len, 1, 8);
  History shorter = History::from_sequence(
      &kKey, {longer.sequence().begin(), longer.sequence().begin() + static_cast<long>(len / 2)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(longer.extends(shorter));
  }
}
BENCHMARK(BM_ExtendsFastPath)->Arg(64)->Arg(1024);

void BM_TotalOrderMeet(benchmark::State& state) {
  // AlwaysConflict: histories degenerate to sequences; meet = longest
  // common prefix.
  const auto len = static_cast<std::size_t>(state.range(0));
  History a = random_history(&kAlways, len, 1, 4);
  History b = History::from_sequence(&kAlways, a.sequence());
  b.append(make_write(99999, "k", "v"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.meet(b));
  }
}
BENCHMARK(BM_TotalOrderMeet)->Arg(64)->Arg(256);

void BM_CSetJoin(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  CSet a, b;
  for (std::size_t i = 0; i < len; ++i) {
    a.append(make_write(i, "k", "v"));
    b.append(make_write(i + len / 2, "k", "v"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.join(b));
  }
}
BENCHMARK(BM_CSetJoin)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
