// E8 — Generic Broadcast throughput/latency vs conflict rate (DESIGN.md).
//
// Paper (§2.3, §3.2–3.3): with command histories, commuting commands never
// collide, so a single Generalized Consensus instance replaces per-command
// consensus; Multicoordinated Generalized Paxos needs only majority
// acceptor quorums (vs > 3/4 for the fast variant) and no single
// coordinator. MultiPaxos is the total-order baseline: it behaves like a
// 100%-conflict workload regardless of semantics. With the wire codec on,
// the bytes column shows the price of re-shipping whole histories in
// 2a/2b messages as the instance grows.

#include <cstdio>

#include "harness.hpp"
#include "smr/kv.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using bench::McPolicy;
using bench::Shape;

constexpr std::size_t kCommands = 60;
constexpr sim::Time kInterarrival = 8;
constexpr int kSeeds = 8;

struct Row {
  double mean_latency = 0;
  double makespan = 0;
  double collisions = 0;
  double bytes_per_cmd = 0;
  double bytes_2a = 0;  // net.bytes.gen.2a, mean per run
  double bytes_2b = 0;  // net.bytes.gen.2b, mean per run
  int runs = 0;
};

Row gen_run(McPolicy kind, double conflict, bool deltas = true,
            bench::Report* breakdown_into = nullptr,
            const char* breakdown_name = nullptr) {
  Row row;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Shape shape;
    shape.seed = seed;
    shape.proposers = 3;
    shape.net.min_delay = 2;
    shape.net.max_delay = 12;
    shape.delta_messages = deltas;
    auto c = bench::make_gen(shape, kind);
    util::Rng wl_rng(seed * 271);
    smr::Workload workload({kCommands, conflict, 0.2, 1}, wl_rng);
    std::map<std::uint64_t, sim::Time> proposed_at;
    for (std::size_t i = 0; i < workload.commands().size(); ++i) {
      const sim::Time at = static_cast<sim::Time>(kInterarrival * i);
      proposed_at[workload.commands()[i].id] = at;
      c.sim->at(at, [&, i] {
        c.proposers[i % c.proposers.size()]->propose(workload.commands()[i]);
      });
    }
    if (!c.sim->run_until([&] { return c.all_learned(kCommands); }, 30'000'000)) continue;
    ++row.runs;
    double total_latency = 0;
    for (const auto& [cid, learned_at] : c.learners[0]->learn_times()) {
      total_latency += static_cast<double>(learned_at - proposed_at[cid]);
    }
    row.mean_latency += total_latency / kCommands;
    row.makespan += static_cast<double>(c.sim->now());
    row.collisions +=
        static_cast<double>(c.sim->metrics().counter("gen.collisions_detected") +
                            c.sim->metrics().counter("gen.fast_collisions_detected"));
    row.bytes_per_cmd +=
        static_cast<double>(bench::net_bytes(c.sim->metrics())) / kCommands;
    row.bytes_2a += static_cast<double>(c.sim->metrics().counter("net.bytes.gen.2a"));
    row.bytes_2b += static_cast<double>(c.sim->metrics().counter("net.bytes.gen.2b"));
    if (breakdown_into && seed == 1) {
      breakdown_into->bytes_table(breakdown_name, c.sim->metrics());
    }
  }
  if (row.runs > 0) {
    row.mean_latency /= row.runs;
    row.makespan /= row.runs;
    row.collisions /= row.runs;
    row.bytes_per_cmd /= row.runs;
    row.bytes_2a /= row.runs;
    row.bytes_2b /= row.runs;
  }
  return row;
}

Row multipaxos_run() {
  Row row;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    sim::NetworkConfig net;
    net.min_delay = 2;
    net.max_delay = 12;
    sim::Simulation simulation(seed, net);
    classic::MultiConfig config;
    sim::NodeId next = 0;
    for (int i = 0; i < 3; ++i) config.coordinators.push_back(next++);
    for (int i = 0; i < 5; ++i) config.acceptors.push_back(next++);
    for (int i = 0; i < 2; ++i) config.learners.push_back(next++);
    for (int i = 0; i < 3; ++i) config.proposers.push_back(next++);
    config.f = 2;
    std::vector<classic::MultiCoordinator*> coords;
    std::vector<classic::MultiLearner*> learners;
    std::vector<classic::MultiProposer*> proposers;
    for (int i = 0; i < 3; ++i) coords.push_back(&simulation.make_process<classic::MultiCoordinator>(config));
    for (int i = 0; i < 5; ++i) simulation.make_process<classic::MultiAcceptor>(config);
    for (int i = 0; i < 2; ++i) learners.push_back(&simulation.make_process<classic::MultiLearner>(config));
    for (int i = 0; i < 3; ++i) proposers.push_back(&simulation.make_process<classic::MultiProposer>(config));

    util::Rng wl_rng(seed * 271);
    smr::Workload workload({kCommands, 0.1, 0.2, 1}, wl_rng);
    std::map<std::uint64_t, sim::Time> proposed_at;
    for (std::size_t i = 0; i < workload.commands().size(); ++i) {
      const sim::Time at = static_cast<sim::Time>(kInterarrival * i);
      proposed_at[workload.commands()[i].id] = at;
      simulation.at(at, [&, i] {
        proposers[i % proposers.size()]->propose(workload.commands()[i]);
      });
    }
    const bool ok = simulation.run_until(
        [&] {
          for (const auto* l : learners) {
            if (l->decided_count() < kCommands) return false;
          }
          return true;
        },
        30'000'000);
    if (!ok) continue;
    ++row.runs;
    double total_latency = 0;
    for (const auto& [inst, t] : learners[0]->decided_at()) {
      total_latency += static_cast<double>(t - proposed_at[learners[0]->log().at(inst).id]);
    }
    row.mean_latency += total_latency / kCommands;
    row.makespan += static_cast<double>(simulation.now());
    row.bytes_per_cmd +=
        static_cast<double>(bench::net_bytes(simulation.metrics())) / kCommands;
  }
  if (row.runs > 0) {
    row.mean_latency /= row.runs;
    row.makespan /= row.runs;
    row.bytes_per_cmd /= row.runs;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E8: generic broadcast — 60 KV commands, 3 clients, delay U[2,12]",
      "commuting commands avoid collisions entirely; multicoord keeps majority "
      "quorums; MultiPaxos orders everything regardless");

  auto& t = report.table("latency and wire cost by conflict fraction",
                         {"system", "conflict %", "mean lat", "makespan", "collisions",
                          "bytes/cmd"});
  std::map<double, Row> mc_rows;  // reused by the delta-ablation table below
  for (double conflict : {0.0, 0.25, 0.5, 1.0}) {
    // Archive one representative breakdown (the 25% point, seed 1).
    const bool snap = conflict == 0.25;
    const Row mc = gen_run(McPolicy::kMultiThenSingle, conflict, true,
                           snap ? &report : nullptr,
                           "byte breakdown, MC GenPaxos, 25% conflict, seed 1");
    mc_rows.emplace(conflict, mc);
    t.row({"MC Generalized Paxos (maj quorums)", 100 * conflict, mc.mean_latency,
           mc.makespan, mc.collisions, mc.bytes_per_cmd});
  }
  for (double conflict : {0.0, 0.25, 0.5, 1.0}) {
    const Row fr = gen_run(McPolicy::kFast, conflict);
    t.row({"Generalized Paxos (fast, 4/5 q)", 100 * conflict, fr.mean_latency,
           fr.makespan, fr.collisions, fr.bytes_per_cmd});
  }
  const Row mp = multipaxos_run();
  t.row({"MultiPaxos (total order baseline)", "any", mp.mean_latency, mp.makespan,
         "n/a", mp.bytes_per_cmd});

  // Before/after for the delta-encoded 2a/2b: same policy and seeds, deltas
  // off (whole c-structs in every 2a/2b, the paper's §3.3 caveat) vs on.
  auto& dt = report.table(
      "delta-encoded 2a/2b ablation — MC GenPaxos, full vs delta",
      {"2a/2b encoding", "conflict %", "bytes/cmd", "gen.2a bytes", "gen.2b bytes",
       "mean lat"});
  for (double conflict : {0.0, 0.25}) {
    const Row full = gen_run(McPolicy::kMultiThenSingle, conflict, false);
    const Row& delta = mc_rows.at(conflict);  // same runs as the main table
    dt.row({"full c-structs", 100 * conflict, full.bytes_per_cmd, full.bytes_2a,
            full.bytes_2b, full.mean_latency});
    dt.row({"deltas", 100 * conflict, delta.bytes_per_cmd, delta.bytes_2a,
            delta.bytes_2b, delta.mean_latency});
  }

  report.note(
      "bytes/cmd = net.bytes_sent / commands; with deltas off the generalized "
      "engine re-ships the whole growing history in 2a/2b (the paper's "
      "large-c-struct caveat), while MultiPaxos ships one command per instance; "
      "with deltas on (the default) 2a/2b carry only the suffix since the last "
      "acknowledged prefix, falling back to full values on resync");
  report.finish();
  return 0;
}
