// E10 — Ablations of the design choices DESIGN.md calls out.
//
//  (a) Coordinator count: nc ∈ {1, 3, 5} multicoordinated rounds under a
//      coordinator crash — how much redundancy buys how much availability.
//  (b) Round ladder under conflicts: always-multi vs multi-then-single vs
//      the §4.5 shrinking ladder — collision convergence behaviour.
//  (c) rnd-write reduction block size (§4.4): disk writes as the block
//      grows, under forced round churn.
//  (d) delta-encoded 2a/2b: wire bytes with the history re-shipped whole
//      (the paper's §3.3 caveat) vs shipped as suffixes, under loss.

#include <cstdio>
#include <memory>

#include "harness.hpp"
#include "smr/kv.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using bench::McPolicy;
using bench::Shape;
using cstruct::History;

// --- (a) coordinator count vs availability -----------------------------------

void coordinator_count_ablation(bench::Report& report) {
  auto& t = report.table(
      "(a) crash 1 coordinator before the proposal; per-round coordinator count",
      {"round width", "mean lat", "p99 lat", "stalled"});
  for (int nc : {1, 3, 5}) {
    util::Histogram lat;
    int stalled = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
      Shape shape;
      // Same pool of 5 coordinator processes; rounds use 1, 3 or 5 of them.
      shape.coordinators = nc == 1 ? 3 : nc;  // nc=1: classic failover setup
      shape.seed = seed;
      shape.net.min_delay = 5;
      shape.net.max_delay = 10;
      auto c = bench::make_mc(shape, nc == 1 ? McPolicy::kSingle : McPolicy::kMulti);
      c.proposers[0]->start_delay = 300;
      c.sim->crash_at(290, c.coordinators[0]->id());
      if (c.sim->run_until([&] { return c.learners[0]->learned(); }, 1'000'000)) {
        lat.add(static_cast<double>(c.learners[0]->learned_at() - 300));
      } else {
        ++stalled;
      }
    }
    const char* label = nc == 1 ? "1 (single-coordinated)" : nc == 3 ? "3 (quorum 2)" : "5 (quorum 3)";
    t.row({label, lat.count() ? lat.mean() : -1.0,
           lat.count() ? lat.percentile(0.99) : -1.0, stalled});
  }
  report.note(
      "(a) width 1 pays failure detection + election + phase 1; wider rounds absorb "
      "the crash with no round change");
}

// --- (b) ladder policies under a conflict-heavy burst ---------------------------

struct LadderResult {
  double makespan = 0;
  double collisions = 0;
  double rounds = 0;
  int done = 0;
};

template <typename MakePolicy>
LadderResult ladder_run(MakePolicy&& make_policy) {
  LadderResult out;
  constexpr std::size_t kCommands = 16;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::NetworkConfig net;
    net.min_delay = 1;
    net.max_delay = 25;
    sim::Simulation s(seed, net);
    std::vector<sim::NodeId> coords{0, 1, 2};
    auto policy = make_policy(coords);
    genpaxos::Config<History> config;
    config.acceptors = {3, 4, 5, 6, 7};
    config.learners = {8, 9};
    config.proposers = {10, 11, 12};
    config.policy = policy.get();
    config.f = 2;
    config.e = 1;
    config.bottom = History(&bench::key_conflicts());
    for (int i = 0; i < 3; ++i) s.make_process<genpaxos::GenCoordinator<History>>(config);
    for (int i = 0; i < 5; ++i) s.make_process<genpaxos::GenAcceptor<History>>(config);
    std::vector<genpaxos::GenLearner<History>*> learners;
    for (int i = 0; i < 2; ++i) learners.push_back(&s.make_process<genpaxos::GenLearner<History>>(config));
    std::vector<genpaxos::GenProposer<History>*> proposers;
    for (int i = 0; i < 3; ++i) proposers.push_back(&s.make_process<genpaxos::GenProposer<History>>(config));
    for (std::size_t i = 0; i < kCommands; ++i) {
      s.at(static_cast<sim::Time>(3 * i), [&, i] {
        proposers[i % 3]->propose(cstruct::make_write(i + 1, "hot", "v"));
      });
    }
    const bool ok = s.run_until(
        [&] {
          for (const auto* l : learners) {
            if (l->learned().size() < kCommands) return false;
          }
          return true;
        },
        30'000'000);
    if (!ok) continue;
    ++out.done;
    out.makespan += static_cast<double>(s.now());
    out.collisions += static_cast<double>(s.metrics().counter("gen.collisions_detected"));
    out.rounds += static_cast<double>(s.metrics().counter("gen.rounds_started"));
  }
  if (out.done > 0) {
    out.makespan /= out.done;
    out.collisions /= out.done;
    out.rounds /= out.done;
  }
  return out;
}

void ladder_ablation(bench::Report& report) {
  auto& t = report.table(
      "(b) conflict-heavy burst (16 conflicting cmds): round-ladder choice",
      {"ladder", "makespan", "collisions", "rounds", "done", "of"});
  const LadderResult always = ladder_run([](std::vector<sim::NodeId> c) {
    return paxos::PatternPolicy::always_multi(std::move(c));
  });
  const LadderResult ladder = ladder_run([](std::vector<sim::NodeId> c) {
    return paxos::PatternPolicy::multi_then_single(std::move(c));
  });
  const LadderResult shrinking = ladder_run([](std::vector<sim::NodeId> c) {
    return std::make_unique<paxos::ShrinkingMultiPolicy>(std::move(c), 1);
  });
  t.row({"always-multi", always.makespan, always.collisions, always.rounds,
         always.done, 10});
  t.row({"multi-then-single (§4.2)", ladder.makespan, ladder.collisions, ladder.rounds,
         ladder.done, 10});
  t.row({"shrinking ladder (§4.5)", shrinking.makespan, shrinking.collisions,
         shrinking.rounds, shrinking.done, 10});
}

// --- (d) delta-encoded 2a/2b (§3.3 large-c-struct caveat) -----------------------

void delta_ablation(bench::Report& report) {
  auto& t = report.table(
      "(d) delta-encoded 2a/2b: wire cost of the growing history (40 cmds, 15% conflict)",
      {"2a/2b encoding", "bytes total", "gen.2a bytes", "gen.2b bytes", "resyncs",
       "makespan"});
  for (const bool deltas : {false, true}) {
    Shape shape;
    shape.proposers = 3;
    shape.seed = 5;
    shape.net.min_delay = 2;
    shape.net.max_delay = 12;
    shape.net.loss_probability = 0.02;  // exercise the resync fallback
    shape.delta_messages = deltas;
    auto c = bench::make_gen(shape, McPolicy::kMultiThenSingle);
    constexpr std::size_t kCmds = 40;
    util::Rng wl_rng(555);
    smr::Workload workload({kCmds, 0.15, 0.2, 1}, wl_rng);
    for (std::size_t i = 0; i < workload.commands().size(); ++i) {
      c.sim->at(static_cast<sim::Time>(6 * i), [&, i] {
        c.proposers[i % 3]->propose(workload.commands()[i]);
      });
    }
    c.sim->run_until([&] { return c.all_learned(kCmds); }, 20'000'000);
    const auto& m = c.sim->metrics();
    t.row({deltas ? "deltas" : "full c-structs", bench::net_bytes(m),
           m.counter("net.bytes.gen.2a"), m.counter("net.bytes.gen.2b"),
           m.counter("gen.2a_resyncs") + m.counter("gen.2b_resyncs"),
           static_cast<double>(c.sim->now())});
  }
  report.note(
      "(d) with deltas each 2a/2b ships only the suffix since the sender's previous "
      "message; lost deltas surface as resyncs (a full-value re-send to the "
      "requester)");
}

// --- (c) rnd persistence block size (§4.4) --------------------------------------

void rnd_block_ablation(bench::Report& report) {
  auto& t = report.table("(c) rnd-write policy under collision-driven round churn (§4.4)",
                         {"rnd persistence", "acceptor writes", "rounds churned"});
  auto run = [&t](bool reduce, std::int64_t block, const char* label) {
    Shape shape;
    shape.proposers = 3;
    shape.seed = 3;
    shape.net.min_delay = 1;
    shape.net.max_delay = 25;
    auto c = bench::make_gen(shape, McPolicy::kMultiThenSingle, reduce);
    c.config.rnd_block = block;
    // Conflict-heavy burst: collision jumps churn through rounds, each of
    // which is a rnd-join at every acceptor.
    constexpr std::size_t kCmds = 24;
    for (std::size_t i = 0; i < kCmds; ++i) {
      c.sim->at(static_cast<sim::Time>(3 * i), [&, i] {
        c.proposers[i % 3]->propose(cstruct::make_write(i + 1, "hot", "v"));
      });
    }
    c.sim->run_until([&] { return c.all_learned(kCmds); }, 20'000'000);
    const std::int64_t churned = c.sim->metrics().counter("gen.rounds_started") +
                                 c.sim->metrics().counter("gen.collisions_detected");
    t.row({label, bench::acceptor_disk_writes(c.sim->metrics()), churned});
  };
  run(false, 1, "write-through");
  run(true, 4, "block = 4");
  run(true, 16, "block = 16");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(argc, argv,
                       "E10: ablations — coordinator count, round ladders, rnd persistence",
                       "design choices from §4.1/§4.2/§4.4/§4.5 of the paper");
  coordinator_count_ablation(report);
  ladder_ablation(report);
  rnd_block_ablation(report);
  delta_ablation(report);
  report.finish();
  return 0;
}
