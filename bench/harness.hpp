#pragma once

// Shared cluster builders and table helpers for the experiment benches
// (E1–E8 of DESIGN.md). Each builder lays out ids densely in the order
// coordinators, acceptors, learners, proposers and wires the corresponding
// processes into a fresh Simulation.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "classic/classic_paxos.hpp"
#include "classic/multi_paxos.hpp"
#include "fast/fast_paxos.hpp"
#include "genpaxos/engine.hpp"
#include "multicoord/mc_consensus.hpp"
#include "sim/simulation.hpp"
#include "smr/kv.hpp"

namespace mcp::bench {

struct Shape {
  int proposers = 1;
  int coordinators = 3;
  int acceptors = 5;
  int learners = 2;
  std::uint64_t seed = 1;
  sim::NetworkConfig net{};
  bool liveness = true;
  sim::Time disk_latency = 0;
};

// --- Classic Paxos ------------------------------------------------------------

struct ClassicCluster {
  std::unique_ptr<sim::Simulation> sim;
  classic::Config config;
  std::vector<classic::Proposer*> proposers;
  std::vector<classic::Coordinator*> coordinators;
  std::vector<classic::Acceptor*> acceptors;
  std::vector<classic::Learner*> learners;
};

inline ClassicCluster make_classic(const Shape& shape) {
  ClassicCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  for (int i = 0; i < shape.coordinators; ++i) c.config.coordinators.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  c.config.f = (shape.acceptors - 1) / 2;
  c.config.enable_liveness = shape.liveness;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<classic::Coordinator>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<classic::Acceptor>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<classic::Learner>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<classic::Proposer>(
        c.config, cstruct::make_write(static_cast<std::uint64_t>(100 + i), "k", "v")));
  }
  return c;
}

// --- Fast Paxos ----------------------------------------------------------------

struct FastCluster {
  std::unique_ptr<sim::Simulation> sim;
  fast::Config config;
  std::vector<fast::Proposer*> proposers;
  std::vector<fast::Coordinator*> coordinators;
  std::vector<fast::Acceptor*> acceptors;
  std::vector<fast::Learner*> learners;
};

inline FastCluster make_fast(const Shape& shape,
                             fast::RecoveryMode recovery = fast::RecoveryMode::kCoordinated,
                             int f = 1, int e = 1) {
  FastCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  for (int i = 0; i < shape.coordinators; ++i) c.config.coordinators.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  c.config.f = f;
  c.config.e = e;
  c.config.recovery = recovery;
  c.config.enable_liveness = shape.liveness;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<fast::Coordinator>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<fast::Acceptor>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<fast::Learner>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<fast::Proposer>(
        c.config, cstruct::make_write(static_cast<std::uint64_t>(100 + i), "k", "v")));
  }
  return c;
}

// --- Multicoordinated consensus ---------------------------------------------------

enum class McPolicy { kSingle, kMulti, kMultiThenSingle, kFast };

struct McCluster {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  multicoord::Config config;
  std::vector<multicoord::Proposer*> proposers;
  std::vector<multicoord::Coordinator*> coordinators;
  std::vector<multicoord::Acceptor*> acceptors;
  std::vector<multicoord::Learner*> learners;
};

inline McCluster make_mc(const Shape& shape, McPolicy kind, bool load_balance = false) {
  McCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  std::vector<sim::NodeId> coords;
  for (int i = 0; i < shape.coordinators; ++i) coords.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  switch (kind) {
    case McPolicy::kSingle:
      c.policy = paxos::PatternPolicy::always_single(coords);
      break;
    case McPolicy::kMulti:
      c.policy = paxos::PatternPolicy::always_multi(coords);
      break;
    case McPolicy::kMultiThenSingle:
      c.policy = paxos::PatternPolicy::multi_then_single(coords);
      break;
    case McPolicy::kFast:
      c.policy = paxos::PatternPolicy::fast_then_single(coords);
      break;
  }
  c.config.policy = c.policy.get();
  c.config.f = (shape.acceptors - 1) / 2;
  c.config.e = std::max(0, (shape.acceptors - c.config.f - 1) / 2);
  c.config.enable_liveness = shape.liveness;
  c.config.load_balance = load_balance;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<multicoord::Coordinator>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<multicoord::Acceptor>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<multicoord::Learner>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<multicoord::Proposer>(
        c.config, cstruct::make_write(static_cast<std::uint64_t>(100 + i), "k", "v")));
  }
  return c;
}

// --- Generalized engine over command histories --------------------------------------

struct GenCluster {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  genpaxos::Config<cstruct::History> config;
  std::vector<genpaxos::GenProposer<cstruct::History>*> proposers;
  std::vector<genpaxos::GenCoordinator<cstruct::History>*> coordinators;
  std::vector<genpaxos::GenAcceptor<cstruct::History>*> acceptors;
  std::vector<genpaxos::GenLearner<cstruct::History>*> learners;

  bool all_learned(std::size_t count) const {
    for (const auto* l : learners) {
      if (l->learned().size() < count) return false;
    }
    return true;
  }
};

inline const cstruct::KeyConflict& key_conflicts() {
  static const cstruct::KeyConflict kRel;
  return kRel;
}

inline GenCluster make_gen(const Shape& shape, McPolicy kind,
                           bool reduce_rnd_writes = true) {
  GenCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  std::vector<sim::NodeId> coords;
  for (int i = 0; i < shape.coordinators; ++i) coords.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  switch (kind) {
    case McPolicy::kSingle:
      c.policy = paxos::PatternPolicy::always_single(coords);
      break;
    case McPolicy::kMulti:
      c.policy = paxos::PatternPolicy::always_multi(coords);
      break;
    case McPolicy::kMultiThenSingle:
      c.policy = paxos::PatternPolicy::multi_then_single(coords);
      break;
    case McPolicy::kFast:
      c.policy = paxos::PatternPolicy::fast_then_single(coords);
      break;
  }
  c.config.policy = c.policy.get();
  if (kind == McPolicy::kFast) {
    c.config.f = std::max(1, (shape.acceptors - 1) / 4);
    c.config.e = c.config.f;
    if (shape.acceptors <= 2 * c.config.e + c.config.f) c.config.e = 0;
  } else {
    c.config.f = (shape.acceptors - 1) / 2;
    c.config.e = std::max(0, (shape.acceptors - c.config.f - 1) / 2);
  }
  c.config.bottom = cstruct::History(&key_conflicts());
  c.config.enable_liveness = shape.liveness;
  c.config.reduce_rnd_writes = reduce_rnd_writes;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(
        &c.sim->make_process<genpaxos::GenCoordinator<cstruct::History>>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(
        &c.sim->make_process<genpaxos::GenAcceptor<cstruct::History>>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(
        &c.sim->make_process<genpaxos::GenLearner<cstruct::History>>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(
        &c.sim->make_process<genpaxos::GenProposer<cstruct::History>>(c.config));
  }
  return c;
}

/// Sum of all per-acceptor ".disk_writes" counters.
inline std::int64_t acceptor_disk_writes(const util::Metrics& m) {
  std::int64_t total = 0;
  for (const auto& [name, value] : m.counters_with_prefix("acceptor.")) {
    if (name.size() >= 12 && name.compare(name.size() - 12, 12, ".disk_writes") == 0) {
      total += value;
    }
  }
  return total;
}

// --- table helpers ---------------------------------------------------------------------

inline void banner(const std::string& title, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace mcp::bench
