#pragma once

// Shared cluster builders and table helpers for the experiment benches
// (E1–E8 of DESIGN.md). Each builder lays out ids densely in the order
// coordinators, acceptors, learners, proposers and wires the corresponding
// processes into a fresh Simulation.
//
// Output goes through Report/Table so every bench binary supports two
// modes: the default human-readable aligned tables, and `--json` for
// machine-readable results CI can archive and diff across commits
// (bench_cstruct_ops is the google-benchmark binary and has
// --benchmark_format=json instead).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "classic/classic_paxos.hpp"
#include "classic/multi_paxos.hpp"
#include "fast/fast_paxos.hpp"
#include "genpaxos/engine.hpp"
#include "multicoord/mc_consensus.hpp"
#include "sim/simulation.hpp"
#include "smr/kv.hpp"

namespace mcp::bench {

struct Shape {
  int proposers = 1;
  int coordinators = 3;
  int acceptors = 5;
  int learners = 2;
  std::uint64_t seed = 1;
  sim::NetworkConfig net{};
  bool liveness = true;
  sim::Time disk_latency = 0;
  /// Generalized engine only: delta-encoded 2a/2b (off = re-ship whole
  /// c-structs, the pre-delta behaviour, for before/after comparisons).
  bool delta_messages = true;
};

// --- Classic Paxos ------------------------------------------------------------

struct ClassicCluster {
  std::unique_ptr<sim::Simulation> sim;
  classic::Config config;
  std::vector<classic::Proposer*> proposers;
  std::vector<classic::Coordinator*> coordinators;
  std::vector<classic::Acceptor*> acceptors;
  std::vector<classic::Learner*> learners;
};

inline ClassicCluster make_classic(const Shape& shape) {
  ClassicCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  for (int i = 0; i < shape.coordinators; ++i) c.config.coordinators.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  c.config.f = (shape.acceptors - 1) / 2;
  c.config.enable_liveness = shape.liveness;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<classic::Coordinator>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<classic::Acceptor>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<classic::Learner>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<classic::Proposer>(
        c.config, cstruct::make_write(static_cast<std::uint64_t>(100 + i), "k", "v")));
  }
  return c;
}

// --- Fast Paxos ----------------------------------------------------------------

struct FastCluster {
  std::unique_ptr<sim::Simulation> sim;
  fast::Config config;
  std::vector<fast::Proposer*> proposers;
  std::vector<fast::Coordinator*> coordinators;
  std::vector<fast::Acceptor*> acceptors;
  std::vector<fast::Learner*> learners;
};

inline FastCluster make_fast(const Shape& shape,
                             fast::RecoveryMode recovery = fast::RecoveryMode::kCoordinated,
                             int f = 1, int e = 1) {
  FastCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  for (int i = 0; i < shape.coordinators; ++i) c.config.coordinators.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  c.config.f = f;
  c.config.e = e;
  c.config.recovery = recovery;
  c.config.enable_liveness = shape.liveness;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<fast::Coordinator>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<fast::Acceptor>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<fast::Learner>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<fast::Proposer>(
        c.config, cstruct::make_write(static_cast<std::uint64_t>(100 + i), "k", "v")));
  }
  return c;
}

// --- Multicoordinated consensus ---------------------------------------------------

enum class McPolicy { kSingle, kMulti, kMultiThenSingle, kFast };

struct McCluster {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  multicoord::Config config;
  std::vector<multicoord::Proposer*> proposers;
  std::vector<multicoord::Coordinator*> coordinators;
  std::vector<multicoord::Acceptor*> acceptors;
  std::vector<multicoord::Learner*> learners;
};

inline McCluster make_mc(const Shape& shape, McPolicy kind, bool load_balance = false) {
  McCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  std::vector<sim::NodeId> coords;
  for (int i = 0; i < shape.coordinators; ++i) coords.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  switch (kind) {
    case McPolicy::kSingle:
      c.policy = paxos::PatternPolicy::always_single(coords);
      break;
    case McPolicy::kMulti:
      c.policy = paxos::PatternPolicy::always_multi(coords);
      break;
    case McPolicy::kMultiThenSingle:
      c.policy = paxos::PatternPolicy::multi_then_single(coords);
      break;
    case McPolicy::kFast:
      c.policy = paxos::PatternPolicy::fast_then_single(coords);
      break;
  }
  c.config.policy = c.policy.get();
  c.config.f = (shape.acceptors - 1) / 2;
  c.config.e = std::max(0, (shape.acceptors - c.config.f - 1) / 2);
  c.config.enable_liveness = shape.liveness;
  c.config.load_balance = load_balance;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(&c.sim->make_process<multicoord::Coordinator>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(&c.sim->make_process<multicoord::Acceptor>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(&c.sim->make_process<multicoord::Learner>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(&c.sim->make_process<multicoord::Proposer>(
        c.config, cstruct::make_write(static_cast<std::uint64_t>(100 + i), "k", "v")));
  }
  return c;
}

// --- Generalized engine over command histories --------------------------------------

struct GenCluster {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<paxos::RoundPolicy> policy;
  genpaxos::Config<cstruct::History> config;
  std::vector<genpaxos::GenProposer<cstruct::History>*> proposers;
  std::vector<genpaxos::GenCoordinator<cstruct::History>*> coordinators;
  std::vector<genpaxos::GenAcceptor<cstruct::History>*> acceptors;
  std::vector<genpaxos::GenLearner<cstruct::History>*> learners;

  bool all_learned(std::size_t count) const {
    for (const auto* l : learners) {
      if (l->learned().size() < count) return false;
    }
    return true;
  }
};

inline const cstruct::KeyConflict& key_conflicts() {
  static const cstruct::KeyConflict kRel;
  return kRel;
}

inline GenCluster make_gen(const Shape& shape, McPolicy kind,
                           bool reduce_rnd_writes = true) {
  GenCluster c;
  c.sim = std::make_unique<sim::Simulation>(shape.seed, shape.net);
  sim::NodeId next = 0;
  std::vector<sim::NodeId> coords;
  for (int i = 0; i < shape.coordinators; ++i) coords.push_back(next++);
  for (int i = 0; i < shape.acceptors; ++i) c.config.acceptors.push_back(next++);
  for (int i = 0; i < shape.learners; ++i) c.config.learners.push_back(next++);
  for (int i = 0; i < shape.proposers; ++i) c.config.proposers.push_back(next++);
  switch (kind) {
    case McPolicy::kSingle:
      c.policy = paxos::PatternPolicy::always_single(coords);
      break;
    case McPolicy::kMulti:
      c.policy = paxos::PatternPolicy::always_multi(coords);
      break;
    case McPolicy::kMultiThenSingle:
      c.policy = paxos::PatternPolicy::multi_then_single(coords);
      break;
    case McPolicy::kFast:
      c.policy = paxos::PatternPolicy::fast_then_single(coords);
      break;
  }
  c.config.policy = c.policy.get();
  if (kind == McPolicy::kFast) {
    c.config.f = std::max(1, (shape.acceptors - 1) / 4);
    c.config.e = c.config.f;
    if (shape.acceptors <= 2 * c.config.e + c.config.f) c.config.e = 0;
  } else {
    c.config.f = (shape.acceptors - 1) / 2;
    c.config.e = std::max(0, (shape.acceptors - c.config.f - 1) / 2);
  }
  c.config.bottom = cstruct::History(&key_conflicts());
  c.config.enable_liveness = shape.liveness;
  c.config.reduce_rnd_writes = reduce_rnd_writes;
  c.config.delta_messages = shape.delta_messages;
  c.config.disk_latency = shape.disk_latency;
  for (int i = 0; i < shape.coordinators; ++i) {
    c.coordinators.push_back(
        &c.sim->make_process<genpaxos::GenCoordinator<cstruct::History>>(c.config));
  }
  for (int i = 0; i < shape.acceptors; ++i) {
    c.acceptors.push_back(
        &c.sim->make_process<genpaxos::GenAcceptor<cstruct::History>>(c.config));
  }
  for (int i = 0; i < shape.learners; ++i) {
    c.learners.push_back(
        &c.sim->make_process<genpaxos::GenLearner<cstruct::History>>(c.config));
  }
  for (int i = 0; i < shape.proposers; ++i) {
    c.proposers.push_back(
        &c.sim->make_process<genpaxos::GenProposer<cstruct::History>>(c.config));
  }
  return c;
}

/// Sum of all per-acceptor ".disk_writes" counters.
inline std::int64_t acceptor_disk_writes(const util::Metrics& m) {
  std::int64_t total = 0;
  for (const auto& [name, value] : m.counters_with_prefix("acceptor.")) {
    if (name.size() >= 12 && name.compare(name.size() - 12, 12, ".disk_writes") == 0) {
      total += value;
    }
  }
  return total;
}

/// Bytes put on the simulated wire, total and per message type (populated
/// whenever NetworkConfig::encode_messages is on, the default).
inline std::int64_t net_bytes(const util::Metrics& m) {
  return m.counter("net.bytes_sent");
}
inline std::vector<std::pair<std::string, std::int64_t>> bytes_by_message(
    const util::Metrics& m) {
  std::vector<std::pair<std::string, std::int64_t>> out;
  const std::string prefix = "net.bytes.";
  for (auto& [name, bytes] : m.counters_with_prefix(prefix)) {
    out.emplace_back(name.substr(prefix.size()), bytes);
  }
  return out;
}

// --- table helpers ---------------------------------------------------------------------

inline void banner(const std::string& title, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// One table cell: integer, double, or text. The dedicated constructors
/// (rather than a std::variant) keep brace-initialized rows unambiguous
/// for every integer width the benches use.
struct Cell {
  enum class Kind { kInt, kDouble, kText };
  Kind kind;
  std::int64_t i = 0;
  double d = 0;
  std::string s;

  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  Cell(T v) : kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}  // NOLINT(runtime/explicit)
  Cell(double v) : kind(Kind::kDouble), d(v) {}                     // NOLINT(runtime/explicit)
  Cell(const char* v) : kind(Kind::kText), s(v) {}                  // NOLINT(runtime/explicit)
  Cell(std::string v) : kind(Kind::kText), s(std::move(v)) {}      // NOLINT(runtime/explicit)

  std::string text() const {
    char buf[64];
    switch (kind) {
      case Kind::kInt:
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(i));
        return buf;
      case Kind::kDouble:
        std::snprintf(buf, sizeof buf, "%.2f", d);
        return buf;
      case Kind::kText:
        return s;
    }
    return {};
  }

  std::string json() const {
    switch (kind) {
      case Kind::kInt:
        return text();
      case Kind::kDouble: {
        if (!std::isfinite(d)) return "null";  // NaN/inf have no JSON spelling
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", d);
        return buf;
      }
      case Kind::kText: {
        std::string out = "\"";
        for (const char c : s) {
          switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
              if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
              } else {
                out += c;
              }
          }
        }
        return out + "\"";
      }
    }
    return "null";
  }
};

/// A named table of typed rows; rendered as aligned text or JSON by Report.
class Table {
 public:
  Table(std::string name, std::vector<std::string> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  Table& row(std::vector<Cell> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  const std::string& name() const { return name_; }

  void print_text() const {
    std::printf("\n-- %s --\n", name_.c_str());
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].text().size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        // Cells beyond the header column count get no padding (width 0).
        const int w = c < width.size() ? static_cast<int>(width[c]) : 0;
        // First column left-aligned (labels), the rest right-aligned.
        std::printf(c == 0 ? "%-*s" : "  %*s", w, cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    for (const auto& r : rows_) {
      std::vector<std::string> cells;
      cells.reserve(r.size());
      for (const Cell& cell : r) cells.push_back(cell.text());
      print_row(cells);
    }
  }

  std::string json() const {
    std::string out = "{\"name\": " + Cell(name_).json() + ", \"columns\": [";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ", ";
      out += Cell(columns_[c]).json();
    }
    out += "], \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r > 0) out += ", ";
      out += "[";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c > 0) out += ", ";
        out += rows_[r][c].json();
      }
      out += "]";
    }
    return out + "]}";
  }

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Collects a bench's tables and notes, then prints them as banner+aligned
/// tables (default) or one JSON document (`--json`). Construct it from
/// main's argc/argv and call finish() last.
class Report {
 public:
  Report(int argc, char** argv, std::string title, std::string claim)
      : title_(std::move(title)), claim_(std::move(claim)) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) json_ = true;
    }
  }

  bool json() const { return json_; }

  Table& table(std::string name, std::vector<std::string> columns) {
    tables_.emplace_back(std::move(name), std::move(columns));
    return tables_.back();
  }

  /// Free-form footnote (kept in the JSON document as a "notes" array).
  void note(std::string text) { notes_.push_back(std::move(text)); }

  /// Append a per-message-type byte breakdown table for one run's metrics.
  void bytes_table(const std::string& name, const util::Metrics& m) {
    Table& t = table(name, {"message", "bytes"});
    for (const auto& [msg, bytes] : bytes_by_message(m)) t.row({msg, bytes});
    t.row({"total (net.bytes_sent)", net_bytes(m)});
  }

  void finish() const {
    if (!json_) {
      banner(title_, claim_);
      for (const Table& t : tables_) t.print_text();
      for (const std::string& n : notes_) std::printf("\n%s\n", n.c_str());
      return;
    }
    std::string out = "{\"bench\": " + Cell(title_).json() +
                      ", \"claim\": " + Cell(claim_).json() + ", \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (i > 0) out += ", ";
      out += tables_[i].json();
    }
    out += "], \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i > 0) out += ", ";
      out += Cell(notes_[i]).json();
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
  }

 private:
  std::string title_;
  std::string claim_;
  bool json_ = false;
  std::deque<Table> tables_;  // deque: references from table() stay valid
  std::vector<std::string> notes_;
};

}  // namespace mcp::bench
