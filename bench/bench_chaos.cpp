// E4/E10 live — the chaos acceptance run: real client traffic through a
// live cluster (thread or TCP backend) while a scripted nemesis kills,
// restarts, partitions, slows and drops; every node persists to a
// FileStorage data dir, so each restart exercises the §4.4 recovery path
// (snapshot + WAL-suffix replay, incarnation bump) on a real process
// boundary.
//
// The gate columns are the invariants, not the clocks: lost.writes and
// dup.writes are 0 in every correct run regardless of scheduling noise, so
// CI pins them at 0 via compare_bench.py while the wall-clock columns
// (elapsed.ms, converge.ms, recover.ms) stay informational.
//
//   $ ./bench_chaos [--scenario smoke|<path>] [--backend thread|tcp]
//                   [--data-dir DIR] [--seed N] [--json]
//                   [--bundle-dir DIR]
//
// --bundle-dir captures a post-mortem bundle (per-node flight-recorder
// journals + metrics + traces + manifest) there after the run — always,
// not only on failure — so CI can archive it and gate on
// `mcpaxos_inspect --json <dir>` reporting zero invariant violations.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/kv_chaos_cluster.hpp"
#include "chaos/nemesis.hpp"
#include "chaos/scenario.hpp"
#include "chaos/workload.hpp"
#include "harness.hpp"

#ifndef MCPAXOS_SCENARIO_DIR
#define MCPAXOS_SCENARIO_DIR "tests/scenarios"
#endif

namespace {

using namespace mcp;

std::string resolve_scenario(const std::string& arg) {
  if (arg.find('/') != std::string::npos ||
      (arg.size() > 6 && arg.rfind(".chaos") == arg.size() - 6)) {
    return arg;  // already a path
  }
  return std::string(MCPAXOS_SCENARIO_DIR) + "/" + arg + ".chaos";
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_arg = "smoke";
  std::string backend_arg = "thread";
  std::string data_dir;
  std::string bundle_dir;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--scenario") scenario_arg = next();
    else if (a == "--backend") backend_arg = next();
    else if (a == "--data-dir") data_dir = next();
    else if (a == "--bundle-dir") bundle_dir = next();
    else if (a == "--seed") seed = std::strtoull(next().c_str(), nullptr, 10);
    // --json is consumed by bench::Report.
  }

  if (data_dir.empty()) {
    char tmpl[] = "/tmp/mcpaxos-chaos.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      return 2;
    }
    data_dir = tmpl;
  }

  chaos::ChaosKvOptions copt;
  copt.backend = backend_arg == "tcp" ? runtime::Backend::kTcp
                                      : runtime::Backend::kThread;
  copt.shape.coordinators = 2;  // multicoordinated: the mode under test
  copt.shape.acceptors = 3;
  copt.shape.servers = 2;
  copt.shape.f = 1;
  copt.shape.e = 1;
  copt.data_root = data_dir;
  copt.seed = seed;
  copt.snapshot_every = 64;

  const chaos::Scenario scenario =
      chaos::parse_scenario_file(resolve_scenario(scenario_arg));

  chaos::ChaosKvCluster cluster(copt);
  cluster.start();
  chaos::Nemesis nemesis(chaos::compile(scenario, cluster.roles(), seed),
                         cluster.hooks());

  chaos::WorkloadOptions wopt;
  wopt.clients = 4;
  wopt.ops_per_client = 30;
  // Stretch the traffic across the whole schedule so the faults actually
  // hit in-flight operations.
  wopt.op_delay =
      std::chrono::milliseconds(scenario.duration_ms / wopt.ops_per_client);
  wopt.incident_dir = bundle_dir;
  wopt.scenario_name = scenario.name;
  const chaos::WorkloadReport run =
      chaos::run_chaos_workload(cluster, nemesis, wopt);

  // With --bundle-dir a bundle is captured even on success: CI archives it
  // and runs mcpaxos_inspect over it as an independent safety gate. (On
  // failure the workload already captured it, at the moment of failure.)
  if (!bundle_dir.empty() && run.incident_bundle.empty()) {
    cluster.capture_incident(bundle_dir, scenario.name);
  }

  // E10-live: per-node recovery accounting while the cluster is still up.
  std::int64_t replayed_max = 0;
  std::int64_t snapshots_loaded = 0;
  int incarnation_max = 0;
  const chaos::RoleTable roles = cluster.roles();
  std::vector<sim::NodeId> all = roles.coordinators;
  all.insert(all.end(), roles.acceptors.begin(), roles.acceptors.end());
  all.insert(all.end(), roles.servers.begin(), roles.servers.end());
  for (const sim::NodeId id : all) {
    const auto [replayed, loaded] = cluster.recovery_stats(id);
    if (replayed > replayed_max) replayed_max = replayed;
    if (loaded) ++snapshots_loaded;
    const int inc = cluster.incarnation(id);
    if (inc > incarnation_max) incarnation_max = inc;
  }
  const std::int64_t dropped = cluster.faults().dropped();
  cluster.stop();

  bench::Report report(
      argc, argv, "E4/E10 live: chaos schedule over a real cluster",
      "Acked writes survive kills/partitions exactly once; a restart over "
      "the same data dir replays a bounded snapshot+suffix and rejoins.");

  report.table("chaos." + scenario.name + " (" + backend_arg + ")",
               {"metric", "value"})
      .row({"ops", run.ops})
      .row({"acked", run.acked})
      .row({"failed", run.failed})
      .row({"client.retries", run.retries})
      .row({"frames.dropped", dropped})
      .row({"stale.reads", run.stale_reads})
      .row({"elapsed.ms", run.makespan_ms})
      .row({"converge.ms", run.convergence_ms});

  // The deterministic gate: these are 0 in every correct run.
  report.table("chaos.invariants (" + backend_arg + ")",
               {"scenario", "lost.writes", "dup.writes", "converged"})
      .row({scenario.name, run.lost_writes, run.dup_applies,
            run.converged ? 1 : 0});

  report.table("recovery (live)", {"metric", "value"})
      .row({"kills", cluster.kill_count()})
      .row({"restarts", cluster.restart_count()})
      .row({"recover.ms.max", cluster.max_restart_ms()})
      .row({"replayed.records.max", replayed_max})
      .row({"snapshot.cadence", copt.snapshot_every})
      .row({"snapshots.loaded", snapshots_loaded})
      .row({"incarnation.max", incarnation_max});

  report.finish();

  const bool ok =
      run.converged && run.lost_writes == 0 && run.dup_applies == 0;
  if (!ok) std::fprintf(stderr, "chaos run FAILED acceptance\n");
  return ok ? 0 : 1;
}
