// E4 — Load balance across coordinator and acceptor quorums (DESIGN.md).
//
// Paper (§4.1): with multiple coordinator/acceptor quorums, no process must
// handle every command. With majority quorums each coordinator handles at
// most 1/2 + 1/nc of the commands and each acceptor at most 1/2 + 1/n; fast
// rounds force every member of a fast quorum — more than 3/4 of the
// acceptors — to process each command.
//
// We run many single-command instances with proposer-side quorum selection
// (§4.1's scheme: a random coordinator quorum with a piggybacked acceptor
// quorum) and measure the realized per-process load fractions.

#include <algorithm>
#include <cstdio>
#include <map>

#include "harness.hpp"

namespace {

using namespace mcp;
using bench::McPolicy;
using bench::Shape;

struct Load {
  double max_coord_fraction = 0;
  double max_acceptor_fraction = 0;
  int decided = 0;
};

Load measure(bool load_balance, int runs) {
  std::map<int, std::int64_t> coord_cmds;     // coordinator index → commands seen
  std::map<int, std::int64_t> acceptor_cmds;  // acceptor index → values accepted
  int decided = 0;
  for (int r = 0; r < runs; ++r) {
    Shape shape;
    shape.seed = static_cast<std::uint64_t>(r + 1);
    shape.net.min_delay = 2;
    shape.net.max_delay = 6;
    auto c = bench::make_mc(shape, McPolicy::kMulti, load_balance);
    const bool ok = c.sim->run_until([&] { return c.learners[0]->learned(); }, 500'000);
    if (!ok) continue;
    ++decided;
    for (int i = 0; i < 3; ++i) {
      const auto n = c.sim->metrics().counter(
          "coord." + std::to_string(c.coordinators[static_cast<std::size_t>(i)]->id()) +
          ".proposals");
      if (n > 0) coord_cmds[i] += 1;  // this coordinator worked on the command
    }
    for (int i = 0; i < 5; ++i) {
      const auto n = c.sim->metrics().counter(
          "acceptor." + std::to_string(c.acceptors[static_cast<std::size_t>(i)]->id()) +
          ".accepts");
      if (n > 0) acceptor_cmds[i] += 1;
    }
  }
  Load out;
  out.decided = decided;
  for (const auto& [i, n] : coord_cmds) {
    out.max_coord_fraction =
        std::max(out.max_coord_fraction, static_cast<double>(n) / decided);
  }
  for (const auto& [i, n] : acceptor_cmds) {
    out.max_acceptor_fraction =
        std::max(out.max_acceptor_fraction, static_cast<double>(n) / decided);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E4: fraction of commands processed by the busiest process",
      "multicoord w/ load balancing: coordinator <= 1/2 + 1/nc (0.83 for nc=3), "
      "acceptor <= 1/2 + 1/n (0.70 for n=5); fast rounds: every acceptor of a fast "
      "quorum > 3/4");

  constexpr int kRuns = 300;
  const Load lb = measure(true, kRuns);
  const Load bc = measure(false, kRuns);

  auto& t = report.table("busiest-process load (nc=3, n=5)",
                         {"configuration", "max coord %", "max acceptor %", "runs"});
  t.row({"multicoord + quorum selection (§4.1)", 100 * lb.max_coord_fraction,
         100 * lb.max_acceptor_fraction, lb.decided});
  t.row({"multicoord, broadcast (no balancing)", 100 * bc.max_coord_fraction,
         100 * bc.max_acceptor_fraction, bc.decided});
  t.row({"fast rounds (bound: quorum/n)", 0.0, 100.0 * 4.0 / 5.0, "n/a"});

  report.note(
      "paper bounds: coordinator 1/2+1/3 = 83.3%, acceptor 1/2+1/5 = 70.0%. fast "
      "rounds have no coordinator load but every selected acceptor quorum covers "
      "4/5 = 80% > 3/4 of the acceptors.");

  const bool ok = lb.max_coord_fraction <= 0.84 && lb.max_acceptor_fraction <= 0.71 &&
                  bc.max_coord_fraction > 0.95;
  report.table("verdict", {"within paper bounds"}).row({ok ? "yes" : "NO"});
  report.finish();
  return ok ? 0 : 1;
}
