// E7 — Collision recovery cost in Fast Paxos (DESIGN.md).
//
// Paper (§2.2): after a collision at fast round i,
//   - restarting a new round from phase 1 costs ~4 extra steps,
//   - coordinated recovery (2b of round i reused as 1b of i+1) costs 2,
//   - uncoordinated recovery (acceptors do it themselves) costs 1.
//
// We burst two conflicting proposals over a jittery network, keep only the
// seeds where a collision actually happened, and report the end-to-end
// decision latency per recovery mode (same seeds for all modes).

#include <cstdio>
#include <set>
#include <vector>

#include "harness.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using bench::Shape;

struct RunResult {
  bool collided = false;
  bool decided = false;
  sim::Time latency = 0;
  std::int64_t extra_writes = 0;
};

RunResult run_once(fast::RecoveryMode mode, std::uint64_t seed) {
  Shape shape;
  shape.seed = seed;
  shape.proposers = 2;
  shape.coordinators = 1;
  shape.net.min_delay = 1;
  shape.net.max_delay = 20;
  auto c = bench::make_fast(shape, mode);
  RunResult out;
  const bool ok = c.sim->run_until(
      [&] {
        for (const auto* l : c.learners) {
          if (!l->learned()) return false;
        }
        return true;
      },
      5'000'000);
  out.decided = ok;
  out.collided = c.sim->metrics().counter("fast.collisions_detected") > 0;
  if (ok) out.latency = c.learners[0]->learned_at();
  out.extra_writes = bench::acceptor_disk_writes(c.sim->metrics());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E7: decision latency after a fast-round collision, by recovery mode",
      "restart > coordinated (2 steps) > uncoordinated (1 step); all modes pay "
      "acceptor disk writes for the discarded values");

  // Find seeds where the coordinated-mode run collides; reuse them across
  // modes so every mode faces the same contention.
  std::vector<std::uint64_t> collided_seeds;
  for (std::uint64_t seed = 1; seed <= 400 && collided_seeds.size() < 40; ++seed) {
    if (run_once(fast::RecoveryMode::kCoordinated, seed).collided) {
      collided_seeds.push_back(seed);
    }
  }
  report.note("collided runs found: " + std::to_string(collided_seeds.size()) +
              " (of 400 candidate seeds)");

  auto& t = report.table("latency by recovery mode",
                         {"recovery mode", "p50 lat", "mean lat", "p99 lat",
                          "writes/run", "decided", "of"});
  for (auto mode : {fast::RecoveryMode::kRestart, fast::RecoveryMode::kCoordinated,
                    fast::RecoveryMode::kUncoordinated}) {
    util::Histogram lat;
    double writes = 0;
    int decided = 0;
    for (std::uint64_t seed : collided_seeds) {
      const RunResult r = run_once(mode, seed);
      if (r.decided) {
        ++decided;
        lat.add(static_cast<double>(r.latency));
        writes += static_cast<double>(r.extra_writes);
      }
    }
    const char* name = mode == fast::RecoveryMode::kRestart        ? "restart"
                       : mode == fast::RecoveryMode::kCoordinated ? "coordinated"
                                                                   : "uncoordinated";
    t.row({name, lat.percentile(0.5), lat.mean(), lat.percentile(0.99),
           writes / decided, decided, collided_seeds.size()});
  }

  util::Histogram base;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Shape shape;
    shape.seed = seed + 1000;
    shape.proposers = 1;
    shape.coordinators = 1;
    shape.net.min_delay = 1;
    shape.net.max_delay = 20;
    auto c = bench::make_fast(shape, fast::RecoveryMode::kCoordinated);
    if (c.sim->run_until([&] { return c.learners[0]->learned(); }, 5'000'000)) {
      base.add(static_cast<double>(c.learners[0]->learned_at()));
    }
  }
  report.table("baseline (no contention, same network)", {"p50", "mean"})
      .row({base.percentile(0.5), base.mean()});
  report.note(
      "uncoordinated recovery wins in the common case (p50) but its tail is heavy: "
      "when acceptors re-collide repeatedly, progress falls back to the leader's "
      "timeout-driven classic round (the liveness backstop of §4.3).");
  report.finish();
  return 0;
}
