// Transport backends side by side: raw frame round-trip latency for the
// thread-queue and TCP carriers, and the generalized engine's sequential
// consensus workload under all three hosts — simulator, thread cluster,
// TCP cluster. The wire bytes use identical counters everywhere, so the
// byte columns line up across hosts while the latency columns show what
// each carrier costs.
//
//   $ ./bench_transport [--json]

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "runtime/gen_cluster.hpp"
#include "transport/tcp_transport.hpp"
#include "transport/thread_transport.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using namespace std::chrono;

constexpr int kPings = 2000;
constexpr std::size_t kCommands = 20;

struct Rtt {
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::int64_t completed = 0;
};

/// Sequential ping-pong over a transport pair: endpoint 1 echoes, endpoint
/// 0 measures. Returns per-round-trip stats.
Rtt ping_pong(transport::Transport& a, transport::Transport& b) {
  std::mutex mu;
  std::condition_variable cv;
  int answered = 0;
  b.start([&b](transport::PeerId from, std::string frame) {
    b.send(from, frame);  // echo from the receive thread
  });
  a.start([&](transport::PeerId, std::string) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++answered;
    }
    cv.notify_one();
  });

  util::Histogram hist;
  const std::string payload(64, 'p');  // a typical small envelope
  for (int i = 0; i < kPings; ++i) {
    const auto t0 = steady_clock::now();
    // The transport may drop frames (that is its contract); a bench has no
    // protocol-level retransmission, so retry with a bounded wait instead
    // of blocking forever — a hang here would wedge the CI job.
    bool got = false;
    for (int attempt = 0; attempt < 50 && !got; ++attempt) {
      a.send(1, payload);
      std::unique_lock<std::mutex> lock(mu);
      got = cv.wait_for(lock, milliseconds(200), [&] { return answered > i; });
    }
    if (!got) break;  // carrier persistently failing: report what we have
    hist.add(duration_cast<nanoseconds>(steady_clock::now() - t0).count() / 1e3);
  }
  a.stop();
  b.stop();
  return {hist.mean(), hist.percentile(0.5), hist.percentile(0.99),
          static_cast<std::int64_t>(hist.count())};
}

Rtt thread_rtt() {
  transport::ThreadHub hub;
  return ping_pong(hub.endpoint(0), hub.endpoint(1));
}

Rtt tcp_rtt() {
  transport::TcpConfig ca, cb;
  ca.self = 0;
  cb.self = 1;
  transport::TcpTransport a(ca), b(cb);
  a.set_peer(1, {"127.0.0.1", b.bind_and_listen()});
  b.set_peer(0, {"127.0.0.1", a.bind_and_listen()});
  return ping_pong(a, b);
}

struct WorkloadResult {
  double wall_ms = 0;
  double mean_cmd_us = 0;
  double p99_cmd_us = 0;
  std::int64_t bytes = 0;
  std::int64_t delivered = 0;
};

cstruct::Command command(std::uint64_t id) {
  const std::string key = (id % 2 == 0) ? "shared" : "user" + std::to_string(id);
  return cstruct::make_write(id, key, "v" + std::to_string(id));
}

/// kCommands proposed strictly sequentially on live nodes.
WorkloadResult live_workload(runtime::Backend backend) {
  runtime::GenShape shape;  // 1 coordinator / 3 acceptors / 1 learner / 1 proposer
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = microseconds(200);
  runtime::GenHistoryCluster cluster(shape, options);
  cluster.start();

  util::Histogram per_cmd;
  const auto t0 = steady_clock::now();
  const auto deadline = t0 + seconds(120);  // a hung cluster must not hang CI
  for (std::size_t i = 1; i <= kCommands; ++i) {
    const auto c0 = steady_clock::now();
    cluster.propose(0, command(i));
    while (cluster.delivered_count(0) < i && steady_clock::now() < deadline) {
      std::this_thread::sleep_for(microseconds(100));
    }
    if (cluster.delivered_count(0) < i) break;
    per_cmd.add(duration_cast<nanoseconds>(steady_clock::now() - c0).count() / 1e3);
  }
  WorkloadResult r;
  r.wall_ms = duration_cast<nanoseconds>(steady_clock::now() - t0).count() / 1e6;
  r.mean_cmd_us = per_cmd.mean();
  r.p99_cmd_us = per_cmd.percentile(0.99);
  r.bytes = cluster.cluster().counter_sum("net.bytes_sent");
  r.delivered = static_cast<std::int64_t>(cluster.delivered_count(0));
  cluster.stop();
  return r;
}

/// The identical workload in the discrete-event simulator (same shape,
/// same ids, same command sequence). Wall time here is pure simulation
/// CPU — there is no carrier — which is exactly the comparison the table
/// makes: the simulator executes the protocol, the transports add the
/// cost of actually shipping the frames.
WorkloadResult sim_workload() {
  namespace gp = genpaxos;
  static const cstruct::KeyConflict kConflicts;
  sim::Simulation s(/*seed=*/1);

  gp::Config<cstruct::History> config;
  auto policy = paxos::PatternPolicy::always_single({0});
  config.policy = policy.get();
  config.acceptors = {1, 2, 3};
  config.learners = {4};
  config.proposers = {5};
  config.f = 1;
  config.e = 0;
  config.bottom = cstruct::History(&kConflicts);

  s.make_process<gp::GenCoordinator<cstruct::History>>(config);
  for (int i = 0; i < 3; ++i) s.make_process<gp::GenAcceptor<cstruct::History>>(config);
  s.make_process<gp::GenLearner<cstruct::History>>(config);
  auto& proposer = s.make_process<gp::GenProposer<cstruct::History>>(config);

  util::Histogram per_cmd;
  const auto t0 = steady_clock::now();
  for (std::size_t i = 1; i <= kCommands; ++i) {
    const auto c0 = steady_clock::now();
    s.at(s.now(), [&, i] { proposer.propose(command(i)); });
    s.run_until([&] { return proposer.delivered_count() >= i; }, s.now() + 1'000'000);
    per_cmd.add(duration_cast<nanoseconds>(steady_clock::now() - c0).count() / 1e3);
  }
  WorkloadResult r;
  r.wall_ms = duration_cast<nanoseconds>(steady_clock::now() - t0).count() / 1e6;
  r.mean_cmd_us = per_cmd.mean();
  r.p99_cmd_us = per_cmd.percentile(0.99);
  r.bytes = s.metrics().counter("net.bytes_sent");
  r.delivered = static_cast<std::int64_t>(proposer.delivered_count());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E11 — transport backends: sim vs thread vs TCP",
      "the envelope layer ships exact wire bytes; a real transport carries "
      "Envelope::encode() frames between processes with the decoder "
      "registries unchanged, so byte counts match across hosts");

  {
    const Rtt t = thread_rtt();
    const Rtt s = tcp_rtt();
    report.table("frame_roundtrip",
                 {"backend", "pings", "mean_us", "p50_us", "p99_us"})
        .row({"thread", t.completed, t.mean_us, t.p50_us, t.p99_us})
        .row({"tcp", s.completed, s.mean_us, s.p50_us, s.p99_us});
  }

  {
    const WorkloadResult sim = sim_workload();
    const WorkloadResult thread = live_workload(runtime::Backend::kThread);
    const WorkloadResult tcp = live_workload(runtime::Backend::kTcp);
    auto& t = report.table("sequential_consensus",
                           {"host", "commands", "wall_ms", "mean_cmd_us",
                            "p99_cmd_us", "bytes_total"});
    t.row({"sim", sim.delivered, sim.wall_ms, sim.mean_cmd_us, sim.p99_cmd_us,
           sim.bytes});
    t.row({"thread", thread.delivered, thread.wall_ms, thread.mean_cmd_us,
           thread.p99_cmd_us, thread.bytes});
    t.row({"tcp", tcp.delivered, tcp.wall_ms, tcp.mean_cmd_us, tcp.p99_cmd_us,
           tcp.bytes});
  }

  report.note(
      "sequential_consensus: 1 coordinator / 3 acceptors / 1 learner, " +
      std::to_string(kCommands) +
      " commands proposed one at a time; live clusters run 200 us/tick. "
      "Byte totals differ across hosts only by liveness traffic "
      "(heartbeats/retries scale with real elapsed time), not by message "
      "encoding — the frames are identical.");
  report.finish();
  return 0;
}
