// E12 — the KV service closed loop: throughput and latency of client
// put/get traffic through the service layer (sessions + batching over one
// Generalized Consensus instance) as a function of the frontend's batch
// size and the number of concurrent closed-loop clients, on all three
// hosts: simulator, thread cluster, TCP cluster.
//
// The claim under test is the service-layer side of §1: because one
// instance carries the whole command stream, client commands cost no
// per-command consensus — and batching flush windows amortize even the
// per-command 2a/2b, so bytes/op and ops/s improve with batch size once
// clients overlap (a single closed-loop client leaves nothing to group).
//
// CI gates on the simulator table only (ticks and bytes are deterministic);
// the live tables measure real clocks on shared runners and use column
// names the regression gate does not watch — except the open-loop p50/p99
// columns, which compare_bench.py checks under its separate, generous
// latency threshold.
//
// Open-loop mode: `--rate N --duration S` drives the live clusters at a
// target arrival rate (ops scheduled on a fixed timeline, issued whether
// or not earlier ops have completed) and reports p50/p99/max latency
// measured from each op's *scheduled* start — so a stalled service shows
// up as queueing delay instead of being hidden by a slowed closed loop
// (coordinated omission).
//
// Group scaling (the sharding claim): `--groups {1,2,4}` (default: sweep
// all three) partitions a FIXED total offered load across that many
// consensus groups, each with its own coordinator, acceptor trio and
// server pair. The sim rows turn on the deterministic receive-capacity
// model (NetworkConfig::bytes_per_tick), which makes the single group's
// acceptor/learner links a genuine serialization bottleneck — so write
// throughput (cmds_per_ktick) must scale near-linearly with groups, and
// compare_bench.py gates both the column and the groups=4 : groups=1
// ratio (>= 2.5x).
//
//   $ ./bench_kv [--json] [--groups N]
//   $ ./bench_kv --rate 500 --duration 5 [--clients 8] [--backend tcp]
//                [--groups N] [--journal DIR]

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "runtime/cluster_file.hpp"
#include "runtime/kv_cluster.hpp"
#include "service/client.hpp"
#include "service/frontend.hpp"
#include "service/partition.hpp"
#include "service/sim_client.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using namespace std::chrono;

constexpr int kSimOps = 100;   // per client
constexpr int kLiveOps = 80;   // per client
const std::vector<std::size_t> kBatchSizes{1, 8, 32};
const std::vector<int> kClientCounts{1, 4};

// Group-scaling runs: the same total load (kScaleClients closed-loop
// writers, kScaleOps puts each) however many groups carry it.
constexpr int kScaleClients = 16;
constexpr int kScaleOps = 60;
constexpr int kLiveScaleOps = 40;
/// Receive capacity per destination per tick for the sim scaling rows
/// (small enough that one group's 2b fan-in serializes under 8 writers).
constexpr sim::Time kScaleBytesPerTick = 4;
const std::vector<int> kGroupSweep{1, 2, 4};

struct SimRow {
  sim::Time makespan = 0;
  double lat_mean = 0;
  double lat_p99 = 0;
  double bytes_per_op = 0;
  std::int64_t batches = 0;
  bool complete = false;
  /// Frontend stage histograms (svc.lat.batch_wait/consensus/apply/reply)
  /// pulled from the simulation's metrics, for the stage-latency table.
  std::vector<std::pair<std::string, util::Histogram>> stages;
};

/// The per-stage frontend latency decomposition of one run: where a
/// command's end-to-end ticks actually go (flush window, consensus,
/// apply, reply fan-out).
constexpr const char* kStageMetrics[] = {
    "svc.lat.batch_wait", "svc.lat.consensus", "svc.lat.apply",
    "svc.lat.reply"};

/// One simulated service cluster (1 coordinator, 3 acceptors, 2 frontends)
/// driven by closed-loop SimClients split across the frontends.
SimRow run_sim(std::size_t batch_size, int clients) {
  static const cstruct::KeyConflict kConflicts;
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 4;
  sim::Simulation simulation(/*seed=*/42 + batch_size, net);

  genpaxos::Config<cstruct::History> config;
  const std::vector<sim::NodeId> coords{0};
  config.acceptors = {1, 2, 3};
  config.learners = {4, 5};
  config.proposers = {4, 5};
  config.f = 1;
  config.bottom = cstruct::History(&kConflicts);
  auto policy = paxos::PatternPolicy::always_single(coords);
  config.policy = policy.get();

  simulation.make_process<genpaxos::GenCoordinator<cstruct::History>>(config);
  for (int i = 0; i < 3; ++i) {
    simulation.make_process<genpaxos::GenAcceptor<cstruct::History>>(config);
  }
  service::Frontend::Options fopt;
  fopt.batch_size = batch_size;
  fopt.batch_delay = batch_size > 1 ? 5 : 0;
  std::vector<service::Frontend*> frontends;
  for (int i = 0; i < 2; ++i) {
    frontends.push_back(&simulation.make_process<service::Frontend>(config, fopt));
  }
  std::vector<service::SimClient*> cs;
  for (int i = 0; i < clients; ++i) {
    service::SimClient::Options copt;
    copt.client_id = static_cast<std::uint64_t>(100 + i);
    copt.server = 4 + (i % 2);
    copt.ops = kSimOps;
    cs.push_back(&simulation.make_process<service::SimClient>(copt));
  }

  const std::size_t total = static_cast<std::size_t>(clients) * kSimOps;
  SimRow row;
  row.complete = simulation.run_until(
      [&] {
        for (const auto* c : cs) {
          if (!c->done()) return false;
        }
        return true;
      },
      10'000'000);
  row.makespan = simulation.now();
  util::Histogram lat;
  for (const auto* c : cs) {
    for (const sim::Time t : c->latencies()) lat.add(static_cast<double>(t));
  }
  row.lat_mean = lat.mean();
  row.lat_p99 = lat.percentile(0.99);
  row.bytes_per_op = static_cast<double>(bench::net_bytes(simulation.metrics())) /
                     static_cast<double>(total);
  for (const auto* f : frontends) {
    row.batches += static_cast<std::int64_t>(f->batches_flushed());
  }
  const auto hists = simulation.metrics().all_histograms();
  for (const char* stage : kStageMetrics) {
    for (const auto& [name, h] : hists) {
      if (name == stage) row.stages.emplace_back(name, h);
    }
  }
  return row;
}

struct ScaleRow {
  sim::Time makespan = 0;
  double cmds_per_ktick = 0;
  std::vector<std::int64_t> group_bytes;  // g<G>.net.bytes_sent per group
  bool complete = false;
};

/// Fixed total load sharded across `groups` consensus groups, each with
/// its own coordinator, three acceptors and two servers (the scale-out
/// deployment the cluster-file `group` lines describe: adding a group
/// adds an acceptor set, which pre-sharding added zero write throughput).
/// The receive-capacity model is on, so the one-group run genuinely
/// saturates its six per-group links and the sharded runs split that
/// byte stream G ways.
ScaleRow run_sim_groups(int groups) {
  static const cstruct::KeyConflict kConflicts;
  sim::NetworkConfig net;
  net.min_delay = 1;
  net.max_delay = 4;
  net.bytes_per_tick = kScaleBytesPerTick;
  sim::Simulation simulation(/*seed=*/97, net);

  std::vector<std::unique_ptr<paxos::RoundPolicy>> policies;
  std::vector<std::unique_ptr<genpaxos::Config<cstruct::History>>> configs;
  std::vector<std::vector<sim::NodeId>> servers(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    // Ids per group: coordinator, acceptors, servers — allocated in the
    // same order the processes are registered below.
    const sim::NodeId base = static_cast<sim::NodeId>(g * 6);
    const sim::NodeId coord = base;
    const std::vector<sim::NodeId> acceptors{base + 1, base + 2, base + 3};
    servers[static_cast<std::size_t>(g)] = {base + 4, base + 5};

    auto config = std::make_unique<genpaxos::Config<cstruct::History>>();
    config->acceptors = acceptors;
    config->learners = servers[static_cast<std::size_t>(g)];
    config->proposers = servers[static_cast<std::size_t>(g)];
    config->f = 1;
    config->bottom = cstruct::History(&kConflicts);
    policies.push_back(paxos::PatternPolicy::always_single({coord}));
    config->policy = policies.back().get();
    configs.push_back(std::move(config));

    simulation.make_process<genpaxos::GenCoordinator<cstruct::History>>(*configs.back());
    simulation.assign_group(coord, static_cast<std::uint32_t>(g));
    for (const sim::NodeId a : acceptors) {
      simulation.make_process<genpaxos::GenAcceptor<cstruct::History>>(*configs.back());
      simulation.assign_group(a, static_cast<std::uint32_t>(g));
    }
    // Each server is a one-shard sharded frontend: the whole keyspace
    // routes to group g (clients are pinned to their group's servers).
    runtime::ClusterGroup whole;
    whole.id = static_cast<std::uint32_t>(g);
    whole.mode = "range";
    whole.lo = "";
    whole.hi = "+";
    service::Frontend::Options fopt;
    fopt.batch_size = 8;
    fopt.batch_delay = 2;
    for (const sim::NodeId s : servers[static_cast<std::size_t>(g)]) {
      simulation.make_process<service::Frontend>(
          std::vector<service::Frontend::GroupConfig>{
              {static_cast<std::uint32_t>(g), configs.back().get()}},
          service::KeyPartition::from_groups({whole}), fopt);
      simulation.assign_group(s, static_cast<std::uint32_t>(g));
    }
  }

  std::vector<service::SimClient*> cs;
  sim::NodeId next = static_cast<sim::NodeId>(groups * 6);
  for (int i = 0; i < kScaleClients; ++i) {
    const int g = i % groups;
    service::SimClient::Options copt;
    copt.client_id = static_cast<std::uint64_t>(100 + i);
    copt.server = servers[static_cast<std::size_t>(g)][(i / groups) % 2];
    copt.ops = kScaleOps;
    copt.read_fraction = 0;  // write throughput is the claim under test
    copt.key_prefix = "g" + std::to_string(g) + ".c" + std::to_string(i) + ".";
    copt.keys = 4;
    // Well past the saturated run's p99: a retry storm would measure the
    // dedup path, not the capacity bottleneck.
    copt.retry_interval = 20'000;
    cs.push_back(&simulation.make_process<service::SimClient>(copt));
    simulation.assign_group(next++, static_cast<std::uint32_t>(g));
  }

  ScaleRow row;
  row.complete = simulation.run_until(
      [&] {
        for (const auto* c : cs) {
          if (!c->done()) return false;
        }
        return true;
      },
      10'000'000);
  row.makespan = simulation.now();
  const double total = static_cast<double>(kScaleClients) * kScaleOps;
  row.cmds_per_ktick =
      row.makespan > 0 ? total * 1000.0 / static_cast<double>(row.makespan) : 0;
  for (int g = 0; g < groups; ++g) {
    row.group_bytes.push_back(
        simulation.metrics().counter("g" + std::to_string(g) + ".net.bytes_sent"));
  }
  return row;
}

struct LiveRow {
  double wall_ms = 0;
  double ops_per_s = 0;
  double us_mean = 0;
  double us_p99 = 0;
  double bytes_per_op = 0;
  int completed = 0;
};

/// Live loopback cluster (thread or TCP backend) under real client
/// threads, each a closed-loop service::Client session.
LiveRow run_live(runtime::Backend backend, std::size_t batch_size, int clients) {
  runtime::KvShape shape;
  shape.frontend.batch_size = batch_size;
  shape.frontend.batch_delay = batch_size > 1 ? 5 : 0;
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = std::chrono::microseconds(200);
  runtime::KvServiceCluster cluster(shape, options);
  cluster.start();

  std::atomic<int> completed{0};
  std::vector<util::Histogram> lat(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto started = steady_clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      service::Client::Options copt;
      copt.client_id = static_cast<std::uint64_t>(700 + t);
      copt.servers = cluster.server_ids();
      copt.attempt_timeout = std::chrono::milliseconds(500);
      service::Client client(cluster.make_channel(cluster.client_endpoint_id(t)), copt);
      for (int i = 0; i < kLiveOps; ++i) {
        const bool read = i % 4 == 3;
        const std::string key = "k" + std::to_string(i % 8);
        const auto t0 = steady_clock::now();
        const auto r = read ? client.get(key) : client.put(key, "v");
        if (!r.ok) continue;
        completed.fetch_add(1);
        lat[static_cast<std::size_t>(t)].add(
            duration<double, std::micro>(steady_clock::now() - t0).count());
      }
    });
  }
  for (auto& th : threads) th.join();

  LiveRow row;
  row.wall_ms = duration<double, std::milli>(steady_clock::now() - started).count();
  row.completed = completed.load();
  row.ops_per_s = row.completed / (row.wall_ms / 1000.0);
  util::Histogram all;
  for (const auto& h : lat) all.merge(h);
  row.us_mean = all.mean();
  row.us_p99 = all.percentile(0.99);
  row.bytes_per_op =
      static_cast<double>(cluster.cluster().counter_sum("net.bytes_sent")) /
      static_cast<double>(row.completed > 0 ? row.completed : 1);
  cluster.stop();
  return row;
}

struct LiveScaleRow {
  double wall_ms = 0;
  double ops_per_s = 0;
  int completed = 0;
  std::vector<std::int64_t> group_bytes;
};

/// The live twin of run_sim_groups: one KvServiceCluster with
/// `groups` consensus groups (per-group coordinator nodes, shared
/// acceptor/server nodes — the one-event-loop-many-processes runtime),
/// fixed total client load, pure puts over keys that hash across every
/// group. Wall-clock, so reported but not byte/latency-gated.
LiveScaleRow run_live_groups(runtime::Backend backend, int groups, int clients) {
  runtime::KvShape shape;
  shape.groups = groups;
  shape.frontend.batch_size = 8;
  shape.frontend.batch_delay = 2;
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = std::chrono::microseconds(200);
  runtime::KvServiceCluster cluster(shape, options);
  cluster.start();

  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  const auto started = steady_clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      service::Client::Options copt;
      copt.client_id = static_cast<std::uint64_t>(1500 + t);
      copt.servers = cluster.server_ids();
      copt.attempt_timeout = std::chrono::milliseconds(500);
      service::Client client(cluster.make_channel(cluster.client_endpoint_id(t)), copt);
      for (int i = 0; i < kLiveScaleOps; ++i) {
        // 32 keys spread the hash partition across every group.
        const std::string key = "sk" + std::to_string((t * kLiveScaleOps + i) % 32);
        if (client.put(key, "v").ok) completed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  LiveScaleRow row;
  row.wall_ms = duration<double, std::milli>(steady_clock::now() - started).count();
  row.completed = completed.load();
  row.ops_per_s = row.completed / (row.wall_ms / 1000.0);
  for (int g = 0; g < groups; ++g) {
    row.group_bytes.push_back(
        cluster.cluster().counter_sum("g" + std::to_string(g) + ".net.bytes_sent"));
  }
  cluster.stop();
  return row;
}

struct OpenRow {
  double rate_target = 0;
  double rate_achieved = 0;
  int issued = 0;
  int completed = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  std::int64_t backpressure_drops = 0;
  /// Per consensus group (client-side key partition): a hot group shows
  /// its own percentiles instead of averaging away.
  std::vector<util::Histogram> per_group;
};

/// Open-loop load over a live cluster: `clients` worker threads share one
/// fixed arrival timeline at `rate` ops/s (worker t owns arrivals t, t+C,
/// t+2C, ...). An op's latency runs from its scheduled arrival, so time an
/// op spends waiting behind a slow predecessor in its worker counts
/// against the service, exactly as a queueing client would experience it.
/// --journal DIR: the open-loop clusters run the protocol flight recorder
/// under DIR/<backend>/node<id>. Exists to price the recorder: the gated
/// p50/p99 columns must not move when it is on.
std::string g_journal_root;

OpenRow run_open_loop(runtime::Backend backend, double rate, double duration_s,
                      int clients, int groups) {
  runtime::KvShape shape;
  shape.groups = groups;
  shape.frontend.batch_size = 8;
  shape.frontend.batch_delay = 5;
  runtime::ClusterOptions options;
  options.backend = backend;
  options.tick = std::chrono::microseconds(200);
  if (!g_journal_root.empty()) {
    options.journal_root =
        g_journal_root + "/" + runtime::backend_name(backend);
  }
  runtime::KvServiceCluster cluster(shape, options);
  cluster.start();

  // The same key -> group function the frontends route by, computed
  // client-side to label each sample with its group.
  const auto partition =
      service::KeyPartition::hashed(static_cast<std::uint32_t>(groups));
  std::atomic<int> issued{0};
  std::atomic<int> completed{0};
  std::vector<util::Histogram> lat(static_cast<std::size_t>(clients));
  std::vector<std::vector<util::Histogram>> glat(
      static_cast<std::size_t>(clients),
      std::vector<util::Histogram>(static_cast<std::size_t>(groups)));
  std::vector<std::thread> threads;
  const auto start = steady_clock::now() + milliseconds(50);  // common epoch
  const auto period = duration<double>(1.0 / rate);
  const auto horizon = duration<double>(duration_s);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      service::Client::Options copt;
      copt.client_id = static_cast<std::uint64_t>(900 + t);
      copt.servers = cluster.server_ids();
      copt.attempt_timeout = std::chrono::milliseconds(500);
      service::Client client(cluster.make_channel(cluster.client_endpoint_id(t)), copt);
      for (std::int64_t k = t;; k += clients) {
        const auto sched =
            start + duration_cast<steady_clock::duration>(period * k);
        if (sched - start >= horizon) break;
        std::this_thread::sleep_until(sched);  // no-op when behind schedule
        issued.fetch_add(1);
        const bool read = k % 4 == 3;
        const std::string key = "k" + std::to_string(k % 8);
        const auto r = read ? client.get(key) : client.put(key, "v");
        const auto waited =
            duration<double, std::micro>(steady_clock::now() - sched).count();
        if (!r.ok) continue;
        completed.fetch_add(1);
        lat[static_cast<std::size_t>(t)].add(waited);
        glat[static_cast<std::size_t>(t)][partition.group_of(key)].add(waited);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed =
      duration<double>(steady_clock::now() - start).count();
  cluster.stop();

  OpenRow row;
  row.rate_target = rate;
  row.issued = issued.load();
  row.completed = completed.load();
  row.rate_achieved = elapsed > 0 ? row.completed / elapsed : 0;
  util::Histogram all;
  for (const auto& h : lat) all.merge(h);
  row.p50_us = all.percentile(0.5);
  row.p99_us = all.percentile(0.99);
  row.max_us = all.max();
  row.backpressure_drops =
      cluster.cluster().counter_sum("net.backpressure.drops");
  row.per_group.resize(static_cast<std::size_t>(groups));
  for (const auto& per_thread : glat) {
    for (int g = 0; g < groups; ++g) {
      row.per_group[static_cast<std::size_t>(g)].merge(
          per_thread[static_cast<std::size_t>(g)]);
    }
  }
  return row;
}

double flag_value(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string flag_text(int argc, char** argv, const char* name,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) return argv[i + 1];
  }
  return fallback;
}

void open_loop_tables(bench::Report& report, double rate, double duration_s,
                      int clients, int groups,
                      const std::string& backend_filter) {
  for (const auto backend :
       {runtime::Backend::kThread, runtime::Backend::kTcp}) {
    const std::string bname = runtime::backend_name(backend);
    if (!backend_filter.empty() && backend_filter != bname) continue;
    auto& t = report.table(
        "kv open-loop " + bname + " (batch 8, tick = 200 us)",
        {"rate_target", "rate_achieved", "clients", "issued", "completed",
         "p50_us", "p99_us", "max_us", "queue_refusals"});
    const OpenRow row = run_open_loop(backend, rate, duration_s, clients, groups);
    t.row({row.rate_target, row.rate_achieved, clients, row.issued,
           row.completed, row.p50_us, row.p99_us, row.max_us,
           row.backpressure_drops});
    // One row per consensus group, so a hot group's percentiles stand on
    // their own instead of averaging into the cluster-wide row above.
    auto& gt = report.table("kv open-loop per-group " + bname,
                            {"group", "completed", "p50_us", "p99_us"});
    for (std::size_t g = 0; g < row.per_group.size(); ++g) {
      const util::Histogram& h = row.per_group[g];
      gt.row({"g" + std::to_string(g), static_cast<std::int64_t>(h.count()),
              h.percentile(0.5), h.percentile(0.99)});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E12 — KV service closed loop (sessions + batching)",
      "batching flush windows amortize per-command 2a/2b (and the delta-chain "
      "resyncs that per-command 2a reordering causes) once clients overlap: "
      "at 4 clients bytes/op drops ~5x and ops/s rises with batch size, while "
      "a single closed-loop client has nothing to group and only pays the "
      "flush window in latency — batch 1 is its optimal configuration");

  const double rate = flag_value(argc, argv, "--rate", 0);
  const double duration_s = flag_value(argc, argv, "--duration", 2.0);
  const int clients_flag =
      static_cast<int>(flag_value(argc, argv, "--clients", 4));
  const int groups_flag = static_cast<int>(flag_value(argc, argv, "--groups", 0));
  const std::string backend_filter = flag_text(argc, argv, "--backend", "");
  g_journal_root = flag_text(argc, argv, "--journal", "");
  // --groups N pins every group-aware table to N; default sweeps {1,2,4}.
  const std::vector<int> group_sweep =
      groups_flag > 0 ? std::vector<int>{groups_flag} : kGroupSweep;
  const int service_groups = groups_flag > 0 ? groups_flag : 1;
  if (rate > 0) {
    // Explicit open-loop run: just the latency tables, at the asked-for
    // rate/duration/client count.
    open_loop_tables(report, rate, duration_s, clients_flag, service_groups,
                     backend_filter);
    report.note(
        "open-loop: ops issued on a fixed arrival timeline at rate_target "
        "ops/s; latency is measured from the scheduled arrival (includes "
        "queueing delay — coordinated omission is counted, not hidden). "
        "queue_refusals sums net.backpressure.drops across nodes.");
    report.finish();
    return 0;
  }

  auto& sim_table = report.table(
      "kv sim (1 coord / 3 acc / 2 frontends, ticks)",
      {"batch", "clients", "ops", "makespan_ticks", "lat_mean_ticks",
       "lat_p99_ticks", "bytes_per_op", "batches", "complete"});
  std::vector<std::pair<std::string, util::Histogram>> stage_rows;
  for (const std::size_t batch : kBatchSizes) {
    for (const int clients : kClientCounts) {
      const SimRow row = run_sim(batch, clients);
      sim_table.row({static_cast<std::int64_t>(batch), clients,
                     clients * kSimOps, row.makespan, row.lat_mean, row.lat_p99,
                     row.bytes_per_op, row.batches,
                     row.complete ? "yes" : "NO"});
      if (batch == 8 && clients == 4) stage_rows = row.stages;
    }
  }

  // Stage decomposition of the middle configuration (batch 8, 4 clients):
  // deterministic sim ticks, so the lat_* columns sit in the gate's strict
  // class and a regression in any one pipeline stage fails CI by name.
  auto& stage_table =
      report.table("kv sim stage latency (batch 8, 4 clients, ticks)",
                   {"stage", "count", "lat_mean_ticks", "lat_p95_ticks"});
  for (const auto& [name, h] : stage_rows) {
    stage_table.row({name.substr(std::string("svc.lat.").size()),
                     static_cast<std::int64_t>(h.count()), h.mean(),
                     h.percentile(0.95)});
  }

  // --- group scaling: fixed load, {1,2,4} consensus groups ------------------
  // Deterministic (seeded sim + capacity model), so both the throughput
  // column and the groups=4 : groups=1 ratio are gated in CI.
  auto& scale_table = report.table(
      "kv sim group-scaling (fixed load, per-group 1 coord / 3 acc / 2 "
      "servers, capacity " +
          std::to_string(kScaleBytesPerTick) + " B/tick)",
      {"run", "groups", "clients", "ops", "makespan_ticks", "cmds_per_ktick",
       "complete"});
  auto& gbytes_table = report.table(
      "kv sim group bytes (per-group share of the scaling runs)",
      {"run", "group", "group_bytes_sent"});
  for (const int groups : group_sweep) {
    const ScaleRow row = run_sim_groups(groups);
    const std::string label = "groups=" + std::to_string(groups);
    scale_table.row({label, groups, kScaleClients, kScaleClients * kScaleOps,
                     row.makespan, row.cmds_per_ktick,
                     row.complete ? "yes" : "NO"});
    for (std::size_t g = 0; g < row.group_bytes.size(); ++g) {
      gbytes_table.row({label, "g" + std::to_string(g), row.group_bytes[g]});
    }
  }

  if (backend_filter.empty() || backend_filter == "tcp") {
    // The live twin: wall-clock on shared runners, so column names stay
    // out of the gate's byte/latency classes.
    auto& lscale_table = report.table(
        "kv live tcp group-scaling (fixed load, tick = 200 us)",
        {"run", "groups", "clients", "ops_done", "wall_ms", "ops_per_s",
         "group_wire_share"});
    for (const int groups : group_sweep) {
      const LiveScaleRow row =
          run_live_groups(runtime::Backend::kTcp, groups, kScaleClients);
      std::int64_t total_wire = 0;
      for (const std::int64_t b : row.group_bytes) total_wire += b;
      std::string share;
      for (std::size_t g = 0; g < row.group_bytes.size(); ++g) {
        if (g > 0) share += "/";
        share += std::to_string(
            total_wire > 0 ? 100 * row.group_bytes[g] / total_wire : 0);
        share += "%";
      }
      lscale_table.row({"groups=" + std::to_string(groups), groups,
                        kScaleClients, row.completed, row.wall_ms,
                        row.ops_per_s, share});
    }
  }

  for (const auto backend : {runtime::Backend::kThread, runtime::Backend::kTcp}) {
    auto& live_table = report.table(
        std::string("kv live ") + runtime::backend_name(backend) +
            " (1 coord / 3 acc / 2 frontends, tick = 200 us)",
        // "live_wire_per_op", not "...bytes...": compare_bench.py gates any
        // column whose name contains "bytes", and this one moves with
        // real-clock retransmission timing on shared runners.
        {"batch", "clients", "ops", "wall_ms", "ops_per_s", "us_mean", "us_p99",
         "live_wire_per_op"});
    for (const std::size_t batch : kBatchSizes) {
      for (const int clients : kClientCounts) {
        const LiveRow row = run_live(backend, batch, clients);
        live_table.row({static_cast<std::int64_t>(batch), clients, row.completed,
                        row.wall_ms, row.ops_per_s, row.us_mean, row.us_p99,
                        row.bytes_per_op});
      }
    }
  }

  // The default report carries one modest open-loop row per backend so CI
  // archives latency percentiles on every run (the gate watches p50/p99
  // under its latency threshold).
  open_loop_tables(report, /*rate=*/300, /*duration_s=*/1.5, /*clients=*/4,
                   service_groups, backend_filter);

  report.note(
      "sim columns are deterministic and gated by scripts/compare_bench.py; "
      "the live tables measure real clocks on shared hardware (and "
      "live_wire_per_op moves with retransmission timing), so closed-loop "
      "live columns avoid the gate's lower-is-better names "
      "(bytes/lat/ticks/makespan/writes). Open-loop p50_us/p99_us are "
      "gated, under the gate's separate latency threshold; latency runs "
      "from the scheduled arrival, so queueing delay is counted.");
  report.note(
      "group-scaling rows shard the SAME total offered load across N "
      "consensus groups (per-group coordinator + acceptor trio + server "
      "pair); cmds_per_ktick is higher-is-better and gated, including the "
      "groups=4 >= 2.5x groups=1 ratio (compare_bench.py --require-ratio).");
  report.finish();
  return 0;
}
