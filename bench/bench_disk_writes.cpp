// E6 — Disk writes per learned command, and the §4.4 reduction (DESIGN.md).
//
// Paper (§4.4): acceptors must write every accepted value to stable
// storage; coordinators never write; rnd[a] can stay volatile if only its
// count "block" is persisted, costing one extra write per acceptor
// recovery. Fast-round collisions add wasted writes (§4.2).

#include <cstdio>

#include "harness.hpp"
#include "smr/kv.hpp"

namespace {

using namespace mcp;
using bench::McPolicy;
using bench::Shape;

struct Row {
  double writes_per_cmd = 0;
  int runs = 0;
};

/// Generalized engine, 20 commuting commands, measure acceptor writes.
Row gen_writes(McPolicy kind, bool reduce, double conflict) {
  Row row;
  constexpr std::size_t kCommands = 20;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Shape shape;
    shape.seed = seed;
    shape.proposers = 2;
    shape.net.min_delay = 1;
    shape.net.max_delay = 15;
    auto c = bench::make_gen(shape, kind, reduce);
    util::Rng wl_rng(seed * 13);
    smr::Workload workload({kCommands, conflict, 0.0, 1}, wl_rng);
    for (std::size_t i = 0; i < workload.commands().size(); ++i) {
      c.sim->at(static_cast<sim::Time>(6 * i), [&, i] {
        c.proposers[i % c.proposers.size()]->propose(workload.commands()[i]);
      });
    }
    if (!c.sim->run_until([&] { return c.all_learned(kCommands); }, 20'000'000)) continue;
    ++row.runs;
    row.writes_per_cmd +=
        static_cast<double>(bench::acceptor_disk_writes(c.sim->metrics())) / kCommands;
  }
  if (row.runs > 0) row.writes_per_cmd /= row.runs;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E6: acceptor disk writes per learned command (n=5 acceptors)",
      "one write per accepted value; coordinators write nothing; volatile rnd (§4.4) "
      "removes the per-round-join write; collisions add wasted writes only in fast "
      "rounds");

  auto& t = report.table("writes per command (20 cmds, 2 proposers)",
                         {"configuration", "writes/cmd"});
  t.row({"multicoord, volatile rnd (§4.4), no conflicts",
         gen_writes(McPolicy::kMultiThenSingle, true, 0.0).writes_per_cmd});
  t.row({"multicoord, write-through rnd, no conflicts",
         gen_writes(McPolicy::kMultiThenSingle, false, 0.0).writes_per_cmd});
  t.row({"multicoord, volatile rnd, all-conflicting",
         gen_writes(McPolicy::kMultiThenSingle, true, 1.0).writes_per_cmd});
  t.row({"fast (GenPaxos), volatile rnd, no conflicts",
         gen_writes(McPolicy::kFast, true, 0.0).writes_per_cmd});
  t.row({"fast (GenPaxos), volatile rnd, all-conflicting",
         gen_writes(McPolicy::kFast, true, 1.0).writes_per_cmd});

  auto& checks = report.table("invariant checks", {"check", "value"});
  // Coordinators never write: assert it on a fresh run.
  {
    Shape shape;
    shape.proposers = 2;
    auto c = bench::make_gen(shape, McPolicy::kMultiThenSingle);
    c.sim->at(0, [&] { c.proposers[0]->propose(cstruct::make_write(1, "k", "v")); });
    c.sim->run_until([&] { return c.all_learned(1); }, 1'000'000);
    std::int64_t coord_writes = 0;
    for (const auto* coord : c.coordinators) {
      coord_writes += coord->storage().write_count();
    }
    checks.row({"coordinator stable writes (any config)", coord_writes});
  }

  // Recovery cost of the §4.4 scheme: exactly one extra write per recovery.
  {
    Shape shape;
    shape.proposers = 1;
    auto c = bench::make_gen(shape, McPolicy::kMultiThenSingle, true);
    c.sim->at(0, [&] { c.proposers[0]->propose(cstruct::make_write(1, "k", "v")); });
    c.sim->run_until([&] { return c.all_learned(1); }, 1'000'000);
    const auto before = c.acceptors[0]->storage().write_count();
    c.sim->crash(c.acceptors[0]->id());
    c.sim->at(c.sim->now() + 10, [&] { c.sim->recover(c.acceptors[0]->id()); });
    c.sim->run_until(c.sim->now() + 20);
    const auto after = c.acceptors[0]->storage().write_count();
    checks.row({"extra writes per acceptor recovery (§4.4)", after - before});
  }
  report.finish();
  return 0;
}
