// E2 — Quorum size requirements (DESIGN.md).
//
// Paper (§2.2 and abstract): if any minority may fail, classic quorums are
// majorities; fast quorums must satisfy n > 2E + F, e.g. ⌈(2n+1)/3⌉ for
// uniform quorums or ⌈(3n+1)/4⌉ when classic quorums stay majorities.
// Multicoordinated rounds use classic (majority) quorums — the paper's
// "only a majority of them must exchange messages".

#include <cmath>
#include <cstdio>
#include <vector>

#include "paxos/quorum.hpp"

int main() {
  using mcp::paxos::QuorumSystem;
  using mcp::sim::NodeId;

  std::printf("E2: acceptor quorum sizes by protocol and cluster size\n");
  std::printf("paper claim: classic/multicoord = majority; fast = ceil((3n+1)/4) with\n");
  std::printf("majority classic quorums; uniform fast+classic = ceil((2n+1)/3)\n\n");
  std::printf("%4s %10s %12s %14s %14s %16s\n", "n", "F (maj)", "classic q",
              "fast q (n-E)", "ceil(3n+1)/4", "uniform ceil(2n+1)/3");

  for (int n = 3; n <= 13; ++n) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const auto qs = QuorumSystem::with_max_tolerance(ids);
    const int paper_fast = (3 * n + 1 + 3) / 4;  // ⌈(3n+1)/4⌉
    const int uniform = (2 * n + 1 + 2) / 3;     // ⌈(2n+1)/3⌉
    std::printf("%4d %10d %12zu %14zu %14d %16d\n", n, qs.f(), qs.classic_quorum_size(),
                qs.fast_quorum_size(), paper_fast, uniform);
    if (!qs.meets_fast_requirement()) {
      std::printf("  !! configuration violates n > 2E + F\n");
      return 1;
    }
  }

  std::printf("\nprocesses that must synchronize per learned command:\n");
  std::printf("%4s %26s %26s\n", "n", "multicoord (majority)", "fast (> 3/4 of n)");
  for (int n = 3; n <= 13; n += 2) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const auto qs = QuorumSystem::with_max_tolerance(ids);
    std::printf("%4d %20zu (%4.0f%%) %20zu (%4.0f%%)\n", n, qs.classic_quorum_size(),
                100.0 * static_cast<double>(qs.classic_quorum_size()) / n,
                qs.fast_quorum_size(),
                100.0 * static_cast<double>(qs.fast_quorum_size()) / n);
  }
  return 0;
}
