// E2 — Quorum size requirements (DESIGN.md).
//
// Paper (§2.2 and abstract): if any minority may fail, classic quorums are
// majorities; fast quorums must satisfy n > 2E + F, e.g. ⌈(2n+1)/3⌉ for
// uniform quorums or ⌈(3n+1)/4⌉ when classic quorums stay majorities.
// Multicoordinated rounds use classic (majority) quorums — the paper's
// "only a majority of them must exchange messages".
//
// The third table grounds the quorum sizes in traffic: with the wire codec
// on (the default), every protocol message is serialized, so we can report
// bytes-on-the-wire per learned command next to the quorum each protocol
// needs.

#include <cmath>
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "paxos/quorum.hpp"

namespace {

using namespace mcp;

struct WireCost {
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::size_t commands = 0;
};

/// One single-command consensus run; returns message/byte totals.
template <typename Cluster>
WireCost measure(Cluster& c, sim::Time deadline) {
  c.sim->run_until([&] { return c.learners[0]->learned(); }, deadline);
  WireCost out;
  out.messages = c.sim->metrics().counter("net.sent");
  out.bytes = bench::net_bytes(c.sim->metrics());
  out.commands = c.learners[0]->learned() ? 1 : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using mcp::paxos::QuorumSystem;
  using mcp::sim::NodeId;

  bench::Report report(
      argc, argv, "E2: acceptor quorum sizes by protocol and cluster size",
      "classic/multicoord = majority; fast = ceil((3n+1)/4) with majority classic "
      "quorums; uniform fast+classic = ceil((2n+1)/3)");

  auto& sizes = report.table(
      "quorum sizes", {"n", "F (maj)", "classic q", "fast q (n-E)", "ceil(3n+1)/4",
                       "uniform ceil(2n+1)/3"});
  for (int n = 3; n <= 13; ++n) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const auto qs = QuorumSystem::with_max_tolerance(ids);
    const int paper_fast = (3 * n + 1 + 3) / 4;  // ⌈(3n+1)/4⌉
    const int uniform = (2 * n + 1 + 2) / 3;     // ⌈(2n+1)/3⌉
    sizes.row({n, qs.f(), qs.classic_quorum_size(), qs.fast_quorum_size(), paper_fast,
               uniform});
    if (!qs.meets_fast_requirement()) {
      std::fprintf(stderr, "!! configuration violates n > 2E + F at n=%d\n", n);
      return 1;
    }
  }

  auto& sync = report.table(
      "processes that must synchronize per learned command",
      {"n", "multicoord (majority)", "maj %", "fast (> 3/4 of n)", "fast %"});
  for (int n = 3; n <= 13; n += 2) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const auto qs = QuorumSystem::with_max_tolerance(ids);
    sync.row({n, qs.classic_quorum_size(),
              100.0 * static_cast<double>(qs.classic_quorum_size()) / n,
              qs.fast_quorum_size(),
              100.0 * static_cast<double>(qs.fast_quorum_size()) / n});
  }

  // Bytes on the wire for one learned command, n = 5 acceptors. Liveness
  // off so retransmissions don't depend on how long the run idles.
  auto& bytes = report.table("bytes on the wire per learned command (n=5, 1 cmd)",
                             {"protocol", "messages", "bytes", "learned"});
  bench::Shape shape;
  shape.liveness = false;
  {
    auto c = bench::make_classic(shape);
    const WireCost w = measure(c, 1'000'000);
    bytes.row({"Classic Paxos", w.messages, w.bytes, static_cast<int>(w.commands)});
  }
  {
    bench::Shape fshape = shape;
    fshape.coordinators = 1;
    auto c = bench::make_fast(fshape);
    const WireCost w = measure(c, 1'000'000);
    bytes.row({"Fast Paxos", w.messages, w.bytes, static_cast<int>(w.commands)});
  }
  {
    auto c = bench::make_mc(shape, bench::McPolicy::kMulti);
    const WireCost w = measure(c, 1'000'000);
    bytes.row({"Multicoordinated Paxos", w.messages, w.bytes,
               static_cast<int>(w.commands)});
  }

  // Per-message breakdown of one multicoordinated run, so the cost of each
  // phase is visible by name.
  {
    auto c = bench::make_mc(shape, bench::McPolicy::kMulti);
    c.sim->run_until([&] { return c.learners[0]->learned(); }, 1'000'000);
    report.bytes_table("byte breakdown, multicoordinated run", c.sim->metrics());
  }

  report.finish();
  return 0;
}
