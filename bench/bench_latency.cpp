// E1 — Latency in communication steps (DESIGN.md).
//
// Paper: Classic Paxos learns in 3 steps behind a leader (§2.1); Fast Paxos
// in 2 steps without one (§2.2); multicoordinated rounds keep the 3-step
// latency of classic rounds while removing the single coordinator (§3.1).
// Phase 1 is executed "a priori" in all cases.

#include <cstdio>

#include "harness.hpp"
#include "util/metrics.hpp"

namespace {

using namespace mcp;
using bench::Shape;

constexpr sim::Time kProposeAt = 50;

sim::Time classic_steps() {
  Shape shape;
  shape.liveness = false;
  auto c = bench::make_classic(shape);
  c.proposers[0]->start_delay = kProposeAt;
  c.sim->run_to_completion();
  return c.learners[0]->learned_at() - kProposeAt;
}

sim::Time fast_steps() {
  Shape shape;
  shape.liveness = false;
  shape.coordinators = 1;
  auto c = bench::make_fast(shape);
  c.proposers[0]->start_delay = kProposeAt;
  c.sim->run_to_completion();
  return c.learners[0]->learned_at() - kProposeAt;
}

sim::Time mc_steps(bench::McPolicy kind) {
  Shape shape;
  shape.liveness = false;
  auto c = bench::make_mc(shape, kind);
  c.proposers[0]->start_delay = kProposeAt;
  c.sim->run_to_completion();
  return c.learners[0]->learned_at() - kProposeAt;
}

struct Realistic {
  double mean;
  double p99;
};

template <typename MakeAndRun>
Realistic realistic(MakeAndRun&& run_once) {
  util::Histogram h;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    h.add(static_cast<double>(run_once(seed)));
  }
  return Realistic{h.mean(), h.percentile(0.99)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Report report(
      argc, argv, "E1: communication steps to learn a command (phase 1 pre-executed)",
      "Classic = 3, Fast = 2, Multicoordinated = 3 (same as classic)");

  auto& steps = report.table(
      "steps", {"protocol", "steps", "acceptor quorum", "coord quorum"});
  steps.row({"Classic Paxos (standalone)", classic_steps(), "3 of 5 (n-F)",
             "1 (leader)"});
  steps.row({"Fast Paxos (standalone)", fast_steps(), "4 of 5 (n-E)", "none"});
  steps.row({"Multicoordinated Paxos", mc_steps(bench::McPolicy::kMulti), "3 of 5 (n-F)",
             "2 of 3"});
  steps.row({"  engine, single-coord rounds", mc_steps(bench::McPolicy::kSingle),
             "3 of 5", "1 (leader)"});
  steps.row({"  engine, fast rounds", mc_steps(bench::McPolicy::kFast), "4 of 5",
             "none"});

  auto classic_run = [](std::uint64_t seed) {
    Shape shape;
    shape.liveness = false;
    shape.seed = seed;
    shape.net.min_delay = 5;
    shape.net.max_delay = 15;
    shape.disk_latency = 5;
    auto c = bench::make_classic(shape);
    c.proposers[0]->start_delay = 200;
    c.sim->run_to_completion();
    return c.learners[0]->learned_at() - 200;
  };
  auto fast_run = [](std::uint64_t seed) {
    Shape shape;
    shape.liveness = false;
    shape.coordinators = 1;
    shape.seed = seed;
    shape.net.min_delay = 5;
    shape.net.max_delay = 15;
    shape.disk_latency = 5;
    auto c = bench::make_fast(shape);
    c.proposers[0]->start_delay = 200;
    c.sim->run_to_completion();
    return c.learners[0]->learned_at() - 200;
  };
  auto mc_run = [](std::uint64_t seed) {
    Shape shape;
    shape.liveness = false;
    shape.seed = seed;
    shape.net.min_delay = 5;
    shape.net.max_delay = 15;
    shape.disk_latency = 5;
    auto c = bench::make_mc(shape, bench::McPolicy::kMulti);
    c.proposers[0]->start_delay = 200;
    c.sim->run_to_completion();
    return c.learners[0]->learned_at() - 200;
  };

  const auto rc = realistic(classic_run);
  const auto rf = realistic(fast_run);
  const auto rm = realistic(mc_run);
  auto& wall = report.table(
      "E1b: wall latency, jittery network (delay U[5,15], disk write = 5)",
      {"protocol", "mean", "p99"});
  wall.row({"Classic Paxos", rc.mean, rc.p99});
  wall.row({"Fast Paxos", rf.mean, rf.p99});
  wall.row({"Multicoordinated Paxos", rm.mean, rm.p99});
  report.note("E1b: same ordering; multicoordinated pays max over a coordinator quorum");
  report.finish();
  return 0;
}
